// Flashcrowd: reproduce the paper's flash-event experiment (§4.6, Fig. 5)
// twice over. First in simulation through the experiment API — a random
// user suddenly gains followers, DynaSoRe replicates their view across the
// cluster, and evicts the extra replicas once the crowd leaves. Then live:
// an embedded pkg/dynasore cluster replicates a hammered view onto the
// broker-local cache server and evicts the replica when the crowd cools.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dynasore/internal/experiments"
	"dynasore/pkg/dynasore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if err := runLive(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := experiments.Default()
	cfg.Users = 1000

	fc := experiments.DefaultFig5()
	fc.Days = 6
	fc.StartDay = 2
	fc.EndDay = 4
	fc.Repetitions = 3
	fc.Followers = 100

	fmt.Printf("flash crowd: +%d followers at day %d, removed at day %d (%d repetitions)\n",
		fc.Followers, fc.StartDay, fc.EndDay, fc.Repetitions)
	points, err := experiments.Figure5(cfg, fc)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatFigure5(points))

	// Summarize the three phases.
	var pre, during, post float64
	var nPre, nDuring, nPost int
	for _, p := range points {
		day := int(p.AtSeconds / 86400)
		switch {
		case day < fc.StartDay:
			pre += p.Replicas
			nPre++
		case day < fc.EndDay:
			during += p.Replicas
			nDuring++
		case day >= fc.EndDay+1: // give eviction a day, as in the paper
			post += p.Replicas
			nPost++
		}
	}
	fmt.Printf("mean replicas: before %.2f -> during flash %.2f -> after cooldown %.2f\n",
		pre/float64(nPre), during/float64(nDuring), post/float64(nPost))
	return nil
}

// runLive replays the flash crowd against a real in-process cluster via the
// public API: hammering one view makes the placement policy replicate it
// onto the broker's rack-local server; once reads stop, the maintenance
// pass drops the abandoned remote copy (negative utility, §3.2).
func runLive() error {
	ctx := context.Background()
	engine, err := dynasore.Open(dynasore.EngineConfig{
		CacheServers: 3,
		Preferred:    2,
		PolicyEvery:  300 * time.Millisecond,
		// A few reads inside the window are enough to replicate in a demo.
		Policy: dynasore.PolicyConfig{AdmissionEpsilon: 500},
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	const celeb = uint32(1) // home server 1, so replication is visible
	if _, err := engine.Write(ctx, celeb, []byte("going viral")); err != nil {
		return err
	}
	fmt.Printf("\nlive flash crowd against broker %s:\n", engine.Addr())
	fmt.Printf("replicas of view %d before the crowd: %d\n", celeb, engine.ReplicaCount(celeb))

	// The crowd arrives: a burst of reads through the v2 network client.
	client, err := dynasore.Dial(ctx, engine.Addr())
	if err != nil {
		return err
	}
	defer client.Close()
	for i := 0; i < 20; i++ {
		if _, err := client.Read(ctx, []uint32{celeb}); err != nil {
			return err
		}
	}
	fmt.Printf("replicas during the flash: %d\n", engine.ReplicaCount(celeb))

	// The crowd leaves; the maintenance pass evicts the abandoned replica.
	deadline := time.Now().Add(5 * time.Second)
	for engine.ReplicaCount(celeb) > 1 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("replicas after cooldown: %d\n", engine.ReplicaCount(celeb))
	return nil
}
