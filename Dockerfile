# Build every deployable binary of the cluster: cache/broker nodes
# (dynasore-node), the HTTP edge (dsgate), and the operator tools
# (dsctl, dsload). The module has zero dependencies, so there is no
# download stage to cache.
FROM golang:1.22 AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/ \
    ./cmd/dynasore-node ./cmd/dsgate ./cmd/dsctl ./cmd/dsload

# Static binaries on a distroless base: no shell, no package manager,
# nothing to patch. The compose file overrides the entrypoint per role.
FROM gcr.io/distroless/static-debian12
COPY --from=build /out/ /usr/local/bin/
ENTRYPOINT ["/usr/local/bin/dsgate"]
