// Package repro_test holds one benchmark per table and figure of the
// paper's evaluation (§4). Each benchmark regenerates its experiment at a
// reduced scale and reports the headline metric of that table/figure via
// b.ReportMetric, so `go test -bench=.` reproduces the full results matrix.
package repro_test

import (
	"testing"

	"dynasore/internal/experiments"
	"dynasore/internal/trace"
)

// benchCfg is the reduced scale used for benchmarks: same cluster shape as
// the paper, fewer users so a full sweep stays in benchmark territory.
func benchCfg() experiments.Config {
	cfg := experiments.Default()
	cfg.Users = 800
	cfg.TreeM = 3
	cfg.TreeN = 3
	cfg.PerRack = 5
	cfg.FlatMachines = 45
	cfg.Extras = []float64{30, 100}
	return cfg
}

// BenchmarkTable1Datasets regenerates the dataset inventory (Table 1).
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.LinksPerUser, "links/user:"+string(r.Dataset))
			}
		}
	}
}

// BenchmarkFigure2TraceVolume regenerates the real-trace daily volumes
// (Fig. 2) and reports the write:read ratio, which the paper's trace keeps
// above 1.
func BenchmarkFigure2TraceVolume(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		days, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var reads, writes int64
			for _, d := range days {
				reads += d.Reads
				writes += d.Writes
			}
			b.ReportMetric(float64(writes)/float64(reads), "writes/read")
		}
	}
}

// benchFigure3 runs one Fig. 3 subplot and reports the normalized
// top-switch traffic of each system at 30% extra memory.
func benchFigure3(b *testing.B, ds experiments.Dataset, flat bool) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(cfg, ds, flat)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pt := res.Points[0] // 30% extra
			b.ReportMetric(pt.Traffic[experiments.SysSPAR], "spar@30")
			b.ReportMetric(pt.Traffic[experiments.SysDynRandom], "dyn-random@30")
			b.ReportMetric(pt.Traffic[experiments.SysDynMetis], "dyn-metis@30")
			if !flat {
				b.ReportMetric(pt.Traffic[experiments.SysDynHMetis], "dyn-hmetis@30")
				b.ReportMetric(res.StaticHMetis, "static-hmetis")
			}
			b.ReportMetric(res.StaticMetis, "static-metis")
		}
	}
}

// BenchmarkFigure3aTwitterTree regenerates Fig. 3a.
func BenchmarkFigure3aTwitterTree(b *testing.B) { benchFigure3(b, experiments.Twitter, false) }

// BenchmarkFigure3bLiveJournalTree regenerates Fig. 3b.
func BenchmarkFigure3bLiveJournalTree(b *testing.B) { benchFigure3(b, experiments.LiveJournal, false) }

// BenchmarkFigure3cFacebookTree regenerates Fig. 3c.
func BenchmarkFigure3cFacebookTree(b *testing.B) { benchFigure3(b, experiments.Facebook, false) }

// BenchmarkFigure3dFacebookFlat regenerates Fig. 3d (flat topology, §4.5).
func BenchmarkFigure3dFacebookFlat(b *testing.B) { benchFigure3(b, experiments.Facebook, true) }

// benchSwitchTraffic runs the per-level switch-traffic table at the given
// budget and reports DynaSoRe's and SPAR's normalized top-switch traffic
// averaged over the three datasets.
func benchSwitchTraffic(b *testing.B, extra float64) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SwitchTraffic(cfg, extra)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var dynTop, sparTop float64
			for _, r := range rows {
				if r.System == experiments.SysDynHMetis {
					dynTop += r.Top / 3
				} else {
					sparTop += r.Top / 3
				}
			}
			b.ReportMetric(dynTop, "dynasore-top")
			b.ReportMetric(sparTop, "spar-top")
		}
	}
}

// BenchmarkTable2SwitchTraffic30 regenerates Table 2 (30% extra memory).
func BenchmarkTable2SwitchTraffic30(b *testing.B) { benchSwitchTraffic(b, 30) }

// BenchmarkTable3SwitchTraffic150 regenerates Table 3 (150% extra memory).
func BenchmarkTable3SwitchTraffic150(b *testing.B) { benchSwitchTraffic(b, 150) }

// BenchmarkFigure4RealTraffic regenerates Fig. 4 and reports DynaSoRe's
// mean normalized daily traffic over the second week (post-convergence).
func BenchmarkFigure4RealTraffic(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		days, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var dyn, spar float64
			for _, d := range days[7:] {
				dyn += d.Traffic[experiments.SysDynMetis] / 7
				spar += d.Traffic[experiments.SysSPAR] / 7
			}
			b.ReportMetric(dyn, "dyn-metis-week2")
			b.ReportMetric(spar, "spar-week2")
		}
	}
}

// BenchmarkFigure5FlashEvent regenerates Fig. 5 and reports the replica
// peak-to-baseline ratio of the hot view.
func BenchmarkFigure5FlashEvent(b *testing.B) {
	cfg := benchCfg()
	fc := experiments.DefaultFig5()
	fc.Days = 5
	fc.StartDay = 1
	fc.EndDay = 3
	fc.Repetitions = 2
	fc.Followers = 80
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure5(cfg, fc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var pre, peak float64
			var nPre int
			for _, p := range points {
				day := p.AtSeconds / trace.SecondsPerDay
				if day < int64(fc.StartDay) {
					pre += p.Replicas
					nPre++
				} else if day < int64(fc.EndDay) && p.Replicas > peak {
					peak = p.Replicas
				}
			}
			b.ReportMetric(pre/float64(nPre), "replicas-before")
			b.ReportMetric(peak, "replicas-peak")
		}
	}
}

// benchFigure6 regenerates one convergence plot and reports the ratio of
// final-quarter to first-quarter application traffic (should be well below
// 1) and the final system-traffic share.
func benchFigure6(b *testing.B, realistic bool) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure6(cfg, realistic)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(points) >= 8 {
			q := len(points) / 4
			var early, late, lateSys float64
			for _, p := range points[:q] {
				early += p.App[experiments.SysDynRandom]
			}
			for _, p := range points[len(points)-q:] {
				late += p.App[experiments.SysDynRandom]
				lateSys += p.Sys[experiments.SysDynRandom]
			}
			b.ReportMetric(late/early, "late/early-app")
			b.ReportMetric(lateSys/float64(q), "late-sys")
		}
	}
}

// BenchmarkFigure6aConvergenceSynthetic regenerates Fig. 6a.
func BenchmarkFigure6aConvergenceSynthetic(b *testing.B) { benchFigure6(b, false) }

// BenchmarkFigure6bConvergenceReal regenerates Fig. 6b.
func BenchmarkFigure6bConvergenceReal(b *testing.B) { benchFigure6(b, true) }
