// Package repro_test holds one benchmark per table and figure of the
// paper's evaluation (§4). Each benchmark regenerates its experiment at a
// reduced scale and reports the headline metric of that table/figure via
// b.ReportMetric, so `go test -bench=.` reproduces the full results matrix.
package repro_test

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynasore/internal/cluster"
	"dynasore/internal/experiments"
	"dynasore/internal/trace"
	"dynasore/pkg/dynasore"
)

// benchCfg is the reduced scale used for benchmarks: same cluster shape as
// the paper, fewer users so a full sweep stays in benchmark territory.
func benchCfg() experiments.Config {
	cfg := experiments.Default()
	cfg.Users = 800
	cfg.TreeM = 3
	cfg.TreeN = 3
	cfg.PerRack = 5
	cfg.FlatMachines = 45
	cfg.Extras = []float64{30, 100}
	return cfg
}

// BenchmarkTable1Datasets regenerates the dataset inventory (Table 1).
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.LinksPerUser, "links/user:"+string(r.Dataset))
			}
		}
	}
}

// BenchmarkFigure2TraceVolume regenerates the real-trace daily volumes
// (Fig. 2) and reports the write:read ratio, which the paper's trace keeps
// above 1.
func BenchmarkFigure2TraceVolume(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		days, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var reads, writes int64
			for _, d := range days {
				reads += d.Reads
				writes += d.Writes
			}
			b.ReportMetric(float64(writes)/float64(reads), "writes/read")
		}
	}
}

// benchFigure3 runs one Fig. 3 subplot and reports the normalized
// top-switch traffic of each system at 30% extra memory.
func benchFigure3(b *testing.B, ds experiments.Dataset, flat bool) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(cfg, ds, flat)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pt := res.Points[0] // 30% extra
			b.ReportMetric(pt.Traffic[experiments.SysSPAR], "spar@30")
			b.ReportMetric(pt.Traffic[experiments.SysDynRandom], "dyn-random@30")
			b.ReportMetric(pt.Traffic[experiments.SysDynMetis], "dyn-metis@30")
			if !flat {
				b.ReportMetric(pt.Traffic[experiments.SysDynHMetis], "dyn-hmetis@30")
				b.ReportMetric(res.StaticHMetis, "static-hmetis")
			}
			b.ReportMetric(res.StaticMetis, "static-metis")
		}
	}
}

// BenchmarkFigure3aTwitterTree regenerates Fig. 3a.
func BenchmarkFigure3aTwitterTree(b *testing.B) { benchFigure3(b, experiments.Twitter, false) }

// BenchmarkFigure3bLiveJournalTree regenerates Fig. 3b.
func BenchmarkFigure3bLiveJournalTree(b *testing.B) { benchFigure3(b, experiments.LiveJournal, false) }

// BenchmarkFigure3cFacebookTree regenerates Fig. 3c.
func BenchmarkFigure3cFacebookTree(b *testing.B) { benchFigure3(b, experiments.Facebook, false) }

// BenchmarkFigure3dFacebookFlat regenerates Fig. 3d (flat topology, §4.5).
func BenchmarkFigure3dFacebookFlat(b *testing.B) { benchFigure3(b, experiments.Facebook, true) }

// benchSwitchTraffic runs the per-level switch-traffic table at the given
// budget and reports DynaSoRe's and SPAR's normalized top-switch traffic
// averaged over the three datasets.
func benchSwitchTraffic(b *testing.B, extra float64) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SwitchTraffic(cfg, extra)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var dynTop, sparTop float64
			for _, r := range rows {
				if r.System == experiments.SysDynHMetis {
					dynTop += r.Top / 3
				} else {
					sparTop += r.Top / 3
				}
			}
			b.ReportMetric(dynTop, "dynasore-top")
			b.ReportMetric(sparTop, "spar-top")
		}
	}
}

// BenchmarkTable2SwitchTraffic30 regenerates Table 2 (30% extra memory).
func BenchmarkTable2SwitchTraffic30(b *testing.B) { benchSwitchTraffic(b, 30) }

// BenchmarkTable3SwitchTraffic150 regenerates Table 3 (150% extra memory).
func BenchmarkTable3SwitchTraffic150(b *testing.B) { benchSwitchTraffic(b, 150) }

// BenchmarkFigure4RealTraffic regenerates Fig. 4 and reports DynaSoRe's
// mean normalized daily traffic over the second week (post-convergence).
func BenchmarkFigure4RealTraffic(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		days, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var dyn, spar float64
			for _, d := range days[7:] {
				dyn += d.Traffic[experiments.SysDynMetis] / 7
				spar += d.Traffic[experiments.SysSPAR] / 7
			}
			b.ReportMetric(dyn, "dyn-metis-week2")
			b.ReportMetric(spar, "spar-week2")
		}
	}
}

// BenchmarkFigure5FlashEvent regenerates Fig. 5 and reports the replica
// peak-to-baseline ratio of the hot view.
func BenchmarkFigure5FlashEvent(b *testing.B) {
	cfg := benchCfg()
	fc := experiments.DefaultFig5()
	fc.Days = 5
	fc.StartDay = 1
	fc.EndDay = 3
	fc.Repetitions = 2
	fc.Followers = 80
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure5(cfg, fc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var pre, peak float64
			var nPre int
			for _, p := range points {
				day := p.AtSeconds / trace.SecondsPerDay
				if day < int64(fc.StartDay) {
					pre += p.Replicas
					nPre++
				} else if day < int64(fc.EndDay) && p.Replicas > peak {
					peak = p.Replicas
				}
			}
			b.ReportMetric(pre/float64(nPre), "replicas-before")
			b.ReportMetric(peak, "replicas-peak")
		}
	}
}

// benchFigure6 regenerates one convergence plot and reports the ratio of
// final-quarter to first-quarter application traffic (should be well below
// 1) and the final system-traffic share.
func benchFigure6(b *testing.B, realistic bool) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure6(cfg, realistic)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(points) >= 8 {
			q := len(points) / 4
			var early, late, lateSys float64
			for _, p := range points[:q] {
				early += p.App[experiments.SysDynRandom]
			}
			for _, p := range points[len(points)-q:] {
				late += p.App[experiments.SysDynRandom]
				lateSys += p.Sys[experiments.SysDynRandom]
			}
			b.ReportMetric(late/early, "late/early-app")
			b.ReportMetric(lateSys/float64(q), "late-sys")
		}
	}
}

// BenchmarkFigure6aConvergenceSynthetic regenerates Fig. 6a.
func BenchmarkFigure6aConvergenceSynthetic(b *testing.B) { benchFigure6(b, false) }

// BenchmarkFigure6bConvergenceReal regenerates Fig. 6b.
func BenchmarkFigure6bConvergenceReal(b *testing.B) { benchFigure6(b, true) }

// clientConcurrency is the worker count of the wire-client benchmarks: 16
// concurrent callers against a single broker.
const clientConcurrency = 16

// clientRTTDelay is the one-way propagation delay the latency proxy adds
// between client and broker, emulating an intra-datacenter network path.
// On loopback the whole cluster shares the local CPU, so without it both
// clients measure encode/decode cost rather than the effect of request
// pipelining — the thing these benchmarks exist to compare.
const clientRTTDelay = 500 * time.Microsecond

// latencyProxy forwards TCP bytes to backendAddr, delivering each chunk
// clientRTTDelay after it arrived (order-preserving, unbounded bandwidth).
// It returns the proxy's listen address.
func latencyProxy(b *testing.B, backendAddr string) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			backend, err := net.Dial("tcp", backendAddr)
			if err != nil {
				conn.Close()
				continue
			}
			go delayPipe(conn, backend)
			go delayPipe(backend, conn)
		}
	}()
	return ln.Addr().String()
}

// delayPipe copies src to dst, holding each chunk for clientRTTDelay while
// later chunks may already be in flight behind it.
func delayPipe(src, dst net.Conn) {
	type chunk struct {
		data []byte
		due  time.Time
	}
	ch := make(chan chunk, 4096)
	done := make(chan struct{})
	go func() {
		defer dst.Close()
		defer close(done)
		for c := range ch {
			time.Sleep(time.Until(c.due))
			if _, err := dst.Write(c.data); err != nil {
				return
			}
		}
	}()
	defer close(ch)
	defer src.Close()
	for {
		buf := make([]byte, 64<<10)
		n, err := src.Read(buf)
		if n > 0 {
			select {
			case ch <- chunk{data: buf[:n], due: time.Now().Add(clientRTTDelay)}:
			case <-done:
				return // writer died; don't block on a full channel
			}
		}
		if err != nil {
			return
		}
	}
}

// benchClientCluster starts an in-process cluster (3 cache servers, one
// broker) and seeds 100 single-event views.
func benchClientCluster(b *testing.B) *dynasore.Engine {
	b.Helper()
	e, err := dynasore.Open(dynasore.EngineConfig{
		CacheServers: 3,
		DataDir:      b.TempDir(),
		Preferred:    -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	ctx := context.Background()
	for u := uint32(0); u < 100; u++ {
		if _, err := e.Write(ctx, u, []byte("seed event")); err != nil {
			b.Fatal(err)
		}
	}
	// Warm every cache entry so both benchmarks measure the hit path.
	targets := make([]uint32, 100)
	for i := range targets {
		targets[i] = uint32(i)
	}
	if _, err := e.Read(ctx, targets); err != nil {
		b.Fatal(err)
	}
	return e
}

// benchConcurrentReads drives b.N single-user reads through readOne from
// clientConcurrency workers sharing one client.
func benchConcurrentReads(b *testing.B, readOne func(user uint32) error) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clientConcurrency)
	b.ResetTimer()
	for w := 0; w < clientConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if err := readOne(uint32(i % 100)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

// BenchmarkClientSerializedV1 is the baseline: 16 workers sharing the
// legacy protocol-v1 client, whose mutex serializes one request per
// connection at a time — every operation pays the full network round trip
// alone.
func BenchmarkClientSerializedV1(b *testing.B) {
	e := benchClientCluster(b)
	c, err := cluster.Dial(latencyProxy(b, e.Addr()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	benchConcurrentReads(b, func(user uint32) error {
		_, err := c.Read([]uint32{user})
		return err
	})
}

// BenchmarkClientPipelined is the same workload through the public
// pkg/dynasore client: protocol v2 multiplexes the 16 workers' requests
// concurrently over a small connection pool, overlapping their round
// trips, so throughput should be well over 2x the serialized baseline.
func BenchmarkClientPipelined(b *testing.B) {
	e := benchClientCluster(b)
	ctx := context.Background()
	c, err := dynasore.Dial(ctx, latencyProxy(b, e.Addr()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	benchConcurrentReads(b, func(user uint32) error {
		_, err := c.Read(ctx, []uint32{user})
		return err
	})
}

// benchProxiedCluster starts 3 cache servers and one broker with the
// latency proxy on EVERY hop: the broker knows its cache servers only by
// their proxied addresses, so broker-proxied reads pay two emulated round
// trips (client → broker, broker → cache server) while the leases the
// broker mints route direct readers through one. This is the topology the
// direct-read fast path exists for; on an unproxied loopback cluster both
// paths would just measure codec cost. Returns the broker's proxied,
// client-facing address; 100 single-event views are seeded and warm.
func benchProxiedCluster(b *testing.B) string {
	b.Helper()
	var serverAddrs []string
	for i := 0; i < 3; i++ {
		s, err := dynasore.ListenCacheServer("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		serverAddrs = append(serverAddrs, latencyProxy(b, s.Addr()))
	}
	br, err := dynasore.ListenBroker(dynasore.BrokerConfig{
		Addr:             "127.0.0.1:0",
		CacheServerAddrs: serverAddrs,
		DataDir:          b.TempDir(),
		Preferred:        -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { br.Close() })
	// Seed over the unproxied broker address — setup cost, not measured.
	ctx := context.Background()
	c, err := dynasore.Dial(ctx, br.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	targets := make([]uint32, 100)
	for u := uint32(0); u < 100; u++ {
		if _, err := c.Write(ctx, u, []byte("seed event")); err != nil {
			b.Fatal(err)
		}
		targets[u] = u
	}
	if _, err := c.Read(ctx, targets); err != nil {
		b.Fatal(err)
	}
	return latencyProxy(b, br.Addr())
}

// BenchmarkBrokerProxiedRead is the two-hop baseline on the proxied
// topology: every read goes client → broker → cache server, paying both
// emulated network legs.
func BenchmarkBrokerProxiedRead(b *testing.B) {
	addr := benchProxiedCluster(b)
	ctx := context.Background()
	c, err := dynasore.DialCluster(ctx, []string{addr})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	benchConcurrentReads(b, func(user uint32) error {
		_, err := c.Read(ctx, []uint32{user})
		return err
	})
}

// BenchmarkDirectRead is the same workload with the direct-read fast
// path: after leases warm up, reads go client → cache server in one
// emulated hop, cutting the broker out of the hot read path.
func BenchmarkDirectRead(b *testing.B) {
	addr := benchProxiedCluster(b)
	ctx := context.Background()
	c, err := dynasore.DialCluster(ctx, []string{addr}, dynasore.WithDirectReads(0))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	// Warm the lease cache: keep sweeping until a whole pass over the
	// working set is served directly.
	targets := make([]uint32, 100)
	for i := range targets {
		targets[i] = uint32(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		before, err := c.Stats(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Read(ctx, targets); err != nil {
			b.Fatal(err)
		}
		after, err := c.Stats(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if after.DirectReads-before.DirectReads == int64(len(targets)) {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("leases never warmed: %+v", after)
		}
		time.Sleep(10 * time.Millisecond)
	}
	start, err := c.Stats(ctx)
	if err != nil {
		b.Fatal(err)
	}
	benchConcurrentReads(b, func(user uint32) error {
		_, err := c.Read(ctx, []uint32{user})
		return err
	})
	b.StopTimer()
	end, err := c.Stats(ctx)
	if err != nil {
		b.Fatal(err)
	}
	if total := end.DirectReads - start.DirectReads; total > 0 && b.N > 0 {
		b.ReportMetric(100*float64(total)/float64(b.N), "direct-hit-%")
	}
}
