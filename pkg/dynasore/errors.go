package dynasore

import (
	"errors"

	"dynasore/internal/cluster"
	"dynasore/internal/membership"
)

// Sentinel errors of the Store and Admin APIs. Callers classify failures
// with errors.Is — never by matching error text. The network backends
// preserve identity across the wire: a broker tags the relayed error with
// a one-byte code and the client reattaches the sentinel, so
// errors.Is(err, dynasore.ErrNotLeader) holds whether the store is an
// in-process Engine or a remote cluster.
var (
	// ErrNoSuchUser reports a read of a user that has never been written.
	// The Store API itself serves such reads as empty views (a fresh user's
	// feed is legitimately empty); surfaces that need a hard miss — the
	// HTTP gateway's read-one endpoint, say — wrap it around the empty
	// result.
	ErrNoSuchUser = errors.New("dynasore: no such user")
	// ErrNotLeader rejects a membership mutation executed directly on a
	// follower broker (network clients are forwarded to the leader
	// transparently, so they see it only when no leader is reachable).
	ErrNotLeader = cluster.ErrNotLeader
	// ErrStaleEpoch marks an operation that ran under a superseded
	// membership epoch; retrying runs it under the fresh one.
	ErrStaleEpoch = cluster.ErrStaleEpoch
	// ErrNoSuchServer rejects an Admin call naming a cache-server address
	// that is not in the membership.
	ErrNoSuchServer = membership.ErrUnknownServer
	// ErrDuplicateServer rejects AddServer of an address already admitted.
	ErrDuplicateServer = membership.ErrDuplicateAddr
	// ErrLastActive rejects draining or removing the last active cache
	// server.
	ErrLastActive = membership.ErrLastActive
)
