package dynasore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynasore/internal/cluster"
	"dynasore/internal/membership"
)

// endpointCooldown is how long a broker endpoint sits out after a
// connection-level failure before the cluster client retries it.
const endpointCooldown = time.Second

// ClusterClient is the multi-endpoint network backend of Store: it talks
// wire protocol v2 to every broker of a multi-broker cluster, spreading
// reads round-robin across them, pinning each user's writes to a stable
// broker (the cluster-side write proxy of §3.1, which also keeps one
// broker sequencing each user's events), and failing over to the next
// broker when one dies. Use DialCluster to create one.
type ClusterClient struct {
	endpoints []*endpoint
	next      atomic.Uint64
	batchSize int
	poolSize  int
	closed    atomic.Bool

	// Elastic-membership tracking: the highest epoch seen in any broker
	// response, the cached membership snapshot refreshed when the epoch
	// advances, and a guard so only one refresh runs at a time.
	// refreshMu makes the closed-check-then-Add in noteEpoch atomic with
	// respect to Close, so Close never races the WaitGroup.
	epoch      atomic.Uint64
	memb       atomic.Pointer[Membership]
	refreshing atomic.Bool
	refreshMu  sync.Mutex
	refreshes  sync.WaitGroup

	// Direct-read fast path (nil unless dialed WithDirectReads): the
	// bounded lease cache plus cache-server connections, and a dedup set
	// of users with a background lease request already in flight.
	direct       *cluster.DirectReader
	leaseMu      sync.Mutex
	leasePending map[uint32]struct{}
}

var _ Store = (*ClusterClient)(nil)

// endpoint is one broker address with its lazily dialed v2 client and a
// cooldown after connection failures. The mutex is never held across a
// dial: a slow or blackholed broker must not block the requests that
// round-robin onto this endpoint — they see "dial in progress" and fail
// over to the next broker immediately.
type endpoint struct {
	addr string

	mu        sync.Mutex
	c         *cluster.ClientV2
	dialing   bool
	closed    bool
	downUntil time.Time
}

// DialCluster connects to a multi-broker cluster (brokers started with
// matching BrokerConfig.Peers, or any set of brokers sharing cache servers
// and placement state). At least one broker must be reachable; the rest
// are dialed lazily and retried after failures, so brokers may come and go
// while the client lives. DialOptions apply as in Dial.
func DialCluster(ctx context.Context, addrs []string, opts ...DialOption) (*ClusterClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("dynasore: DialCluster needs at least one broker address")
	}
	cfg := dialConfig{batchSize: 256}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &ClusterClient{batchSize: cfg.batchSize, poolSize: cfg.poolSize}
	if cfg.direct {
		c.direct = cluster.NewDirectReader(cfg.directLeases)
		c.leasePending = make(map[uint32]struct{})
	}
	for _, addr := range addrs {
		c.endpoints = append(c.endpoints, &endpoint{addr: addr})
	}
	// Eager dials run concurrently: one blackholed broker must not delay
	// connecting to the reachable ones.
	errs := make([]error, len(c.endpoints))
	var wg sync.WaitGroup
	for i, ep := range c.endpoints {
		wg.Add(1)
		go func(i int, ep *endpoint) {
			defer wg.Done()
			_, errs[i] = ep.client(ctx, cfg.poolSize)
		}(i, ep)
	}
	wg.Wait()
	var firstErr error
	ok := false
	for _, err := range errs {
		if err == nil {
			ok = true
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if !ok {
		return nil, fmt.Errorf("dynasore: no broker reachable: %w", firstErr)
	}
	return c, nil
}

// client returns the endpoint's connection, dialing it if needed. A broker
// in cooldown after a recent failure, or with a dial already in flight, is
// reported unreachable without blocking — callers fail over instead of
// queueing behind a slow dial.
func (e *endpoint) client(ctx context.Context, poolSize int) (*cluster.ClientV2, error) {
	e.mu.Lock()
	if e.c != nil {
		c := e.c
		e.mu.Unlock()
		return c, nil
	}
	if e.dialing {
		e.mu.Unlock()
		return nil, fmt.Errorf("dynasore: broker %s dial in progress", e.addr)
	}
	if time.Now().Before(e.downUntil) {
		e.mu.Unlock()
		return nil, fmt.Errorf("dynasore: broker %s cooling down after failure", e.addr)
	}
	e.dialing = true
	e.mu.Unlock()

	c, err := cluster.DialV2(ctx, e.addr, poolSize)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.dialing = false
	if err != nil {
		e.downUntil = time.Now().Add(endpointCooldown)
		return nil, err
	}
	if e.closed {
		// The cluster client was closed while this dial was in flight.
		c.Close()
		return nil, errors.New("dynasore: cluster client is closed")
	}
	e.c = c
	return c, nil
}

// fail drops the endpoint's connection after a transport error and starts
// its cooldown.
func (e *endpoint) fail() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.c != nil {
		e.c.Close()
		e.c = nil
	}
	e.downUntil = time.Now().Add(endpointCooldown)
}

// failover reports whether an error means "try the next broker": transport
// and connection errors do, application-level errors relayed by a live
// broker (cluster.ErrRemote) do not.
func failover(err error) bool {
	return err != nil && !errors.Is(err, cluster.ErrRemote)
}

// try runs op against up to len(endpoints) brokers, starting at start and
// failing over on transport errors.
func (c *ClusterClient) try(ctx context.Context, start int, op func(*cluster.ClientV2) error) error {
	if c.closed.Load() {
		return errors.New("dynasore: cluster client is closed")
	}
	var lastErr error
	n := len(c.endpoints)
	for i := 0; i < n; i++ {
		ep := c.endpoints[(start+i)%n]
		cl, err := ep.client(ctx, c.poolSize)
		if err != nil {
			lastErr = err
			continue
		}
		err = op(cl)
		if err == nil {
			return nil
		}
		if !failover(err) || ctx.Err() != nil {
			return err
		}
		ep.fail()
		lastErr = err
	}
	return fmt.Errorf("dynasore: all %d brokers failed: %w", n, lastErr)
}

// readChunk fetches one batch of views through any available broker.
func (c *ClusterClient) readChunk(ctx context.Context, targets []uint32) ([]View, error) {
	var out []View
	start := int(c.next.Add(1)) % len(c.endpoints)
	err := c.try(ctx, start, func(cl *cluster.ClientV2) error {
		views, err := cl.Read(ctx, targets)
		if err != nil {
			return err
		}
		out = fromClusterViews(views)
		c.noteEpoch(cl.Epoch())
		return nil
	})
	return out, err
}

// noteEpoch folds a broker connection's observed membership epoch into
// the client's; a cached snapshot older than the observed epoch triggers
// a background refresh, re-armed by every later response until one
// succeeds — so the client's server table follows the cluster's without
// polling, and a transient refresh failure heals on the next request
// rather than waiting for another membership change.
func (c *ClusterClient) noteEpoch(e uint64) {
	if e == 0 {
		return // pre-membership broker: no epochs on the wire
	}
	if c.direct != nil {
		// A newer epoch implicitly invalidates every direct-read lease
		// minted below it.
		c.direct.NoteEpoch(e)
	}
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			break
		}
	}
	if m := c.memb.Load(); m != nil && m.Epoch >= c.epoch.Load() {
		return
	}
	if !c.refreshing.CompareAndSwap(false, true) {
		return
	}
	c.refreshMu.Lock()
	if c.closed.Load() {
		c.refreshMu.Unlock()
		c.refreshing.Store(false)
		return
	}
	c.refreshes.Add(1)
	c.refreshMu.Unlock()
	go func() {
		defer c.refreshes.Done()
		defer c.refreshing.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Membership itself installs the result under the epoch guard, so
		// a reply from a lagging broker can never regress the cache.
		_, _ = c.Membership(ctx)
	}()
}

// leaseAsync requests a direct-read lease for user in the background,
// unless a valid lease is already cached or a request is already in
// flight. Lease traffic therefore stays bounded by the miss rate: one
// outstanding request per missing user, not one per read.
func (c *ClusterClient) leaseAsync(user uint32) {
	if c.direct.HasLease(user) {
		return
	}
	c.leaseMu.Lock()
	if _, busy := c.leasePending[user]; busy {
		c.leaseMu.Unlock()
		return
	}
	c.leasePending[user] = struct{}{}
	c.leaseMu.Unlock()
	// Same barrier as noteEpoch: the closed-check-then-Add must not race
	// Close's WaitGroup.
	c.refreshMu.Lock()
	if c.closed.Load() {
		c.refreshMu.Unlock()
		c.leaseMu.Lock()
		delete(c.leasePending, user)
		c.leaseMu.Unlock()
		return
	}
	c.refreshes.Add(1)
	c.refreshMu.Unlock()
	go func() {
		defer c.refreshes.Done()
		defer func() {
			c.leaseMu.Lock()
			delete(c.leasePending, user)
			c.leaseMu.Unlock()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		start := int(c.next.Add(1)) % len(c.endpoints)
		// Failure is harmless: reads keep working through the broker, and
		// the next miss re-arms the request.
		_ = c.try(ctx, start, func(cl *cluster.ClientV2) error {
			l, err := cl.Lease(ctx, user)
			if err != nil {
				return err
			}
			c.noteEpoch(cl.Epoch())
			c.direct.Install(l)
			return nil
		})
	}()
}

// CachedMembership returns the most recent membership snapshot the client
// auto-refreshed after noticing a newer epoch in a response, or ok ==
// false before the first refresh completes. Use Membership for an
// explicit round trip.
func (c *ClusterClient) CachedMembership() (Membership, bool) {
	if m := c.memb.Load(); m != nil {
		return *m, true
	}
	return Membership{}, false
}

// Epoch returns the highest membership epoch this client has observed in
// broker responses.
func (c *ClusterClient) Epoch() uint64 { return c.epoch.Load() }

// Membership fetches the current cache-server set through any reachable
// broker and updates the cached snapshot.
func (c *ClusterClient) Membership(ctx context.Context) (Membership, error) {
	var out Membership
	start := int(c.next.Add(1)) % len(c.endpoints)
	err := c.try(ctx, start, func(cl *cluster.ClientV2) error {
		info, err := cl.Membership(ctx)
		if err != nil {
			return err
		}
		out = fromClusterMembership(info)
		return nil
	})
	if err == nil {
		if cur := c.memb.Load(); cur == nil || out.Epoch > cur.Epoch {
			c.memb.Store(&out)
		}
	}
	return out, err
}

// AddServer admits a new cache server into the cluster through any
// reachable broker (forwarded to the leader) and returns the new
// membership.
func (c *ClusterClient) AddServer(ctx context.Context, addr string, pos Position, capacity int) (Membership, error) {
	return c.adminOp(ctx, func(cl *cluster.ClientV2) (cluster.MembershipInfo, error) {
		return cl.AddServer(ctx, membership.ServerInfo{
			Addr: addr, Zone: pos.Zone, Rack: pos.Rack, Capacity: capacity,
		})
	})
}

// DrainServer starts decommissioning the cache server at addr.
func (c *ClusterClient) DrainServer(ctx context.Context, addr string) (Membership, error) {
	return c.adminOp(ctx, func(cl *cluster.ClientV2) (cluster.MembershipInfo, error) {
		return cl.DrainServer(ctx, addr)
	})
}

// RemoveServer retires the cache server at addr from the cluster.
func (c *ClusterClient) RemoveServer(ctx context.Context, addr string) (Membership, error) {
	return c.adminOp(ctx, func(cl *cluster.ClientV2) (cluster.MembershipInfo, error) {
		return cl.RemoveServer(ctx, addr)
	})
}

var _ Admin = (*ClusterClient)(nil)

func (c *ClusterClient) adminOp(ctx context.Context, op func(*cluster.ClientV2) (cluster.MembershipInfo, error)) (Membership, error) {
	var out Membership
	start := int(c.next.Add(1)) % len(c.endpoints)
	err := c.try(ctx, start, func(cl *cluster.ClientV2) error {
		info, err := op(cl)
		if err != nil {
			return err
		}
		out = fromClusterMembership(info)
		return nil
	})
	if err == nil {
		if cur := c.memb.Load(); cur == nil || out.Epoch > cur.Epoch {
			c.memb.Store(&out)
		}
	}
	return out, err
}

// Read fetches the views of every user in targets, in order. Each call is
// served by the next broker round-robin; target lists larger than the read
// batch size are split into concurrent chunks, so one big feed read spreads
// across the whole broker tier. With WithDirectReads, each target is first
// tried against its leased cache servers — one hop — and only the misses
// go through a broker; users that missed get a lease requested in the
// background so the next read of them can go direct.
func (c *ClusterClient) Read(ctx context.Context, targets []uint32) ([]View, error) {
	if len(targets) == 0 {
		return []View{}, nil
	}
	if c.direct == nil {
		return c.brokerRead(ctx, targets)
	}
	out := make([]View, len(targets))
	var missIdx []int
	var missTargets []uint32
	for i, u := range targets {
		if v, ok := c.direct.TryRead(ctx, u); ok {
			out[i] = fromClusterView(v)
			continue
		}
		missIdx = append(missIdx, i)
		missTargets = append(missTargets, u)
	}
	if len(missTargets) == 0 {
		return out, nil
	}
	views, err := c.brokerRead(ctx, missTargets)
	if err != nil {
		return nil, err
	}
	for j, v := range views {
		out[missIdx[j]] = v
		// Feed the broker-served version into the client-side fence, and
		// re-lease the user in the background if no valid lease remains.
		c.direct.Observe(missTargets[j], v.Version)
		c.leaseAsync(missTargets[j])
	}
	return out, nil
}

// brokerRead is the broker-proxied read path: round-robin chunked reads
// across the broker tier.
func (c *ClusterClient) brokerRead(ctx context.Context, targets []uint32) ([]View, error) {
	if c.batchSize <= 0 || len(targets) <= c.batchSize {
		return c.readChunk(ctx, targets)
	}
	out := make([]View, len(targets))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for start := 0; start < len(targets); start += c.batchSize {
		end := min(start+c.batchSize, len(targets))
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			views, err := c.readChunk(ctx, targets[start:end])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			copy(out[start:end], views)
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Write appends payload to user's view and returns its sequence number.
// Writes for one user prefer one stable broker (hash affinity), so that
// broker sequences the user's events in its WAL; on its death the write
// fails over to the next broker.
func (c *ClusterClient) Write(ctx context.Context, user uint32, payload []byte) (uint64, error) {
	var seq uint64
	start := int(user*2654435761>>16) % len(c.endpoints)
	err := c.try(ctx, start, func(cl *cluster.ClientV2) error {
		var err error
		seq, err = cl.Write(ctx, user, payload)
		if err == nil {
			c.noteEpoch(cl.Epoch())
		}
		return err
	})
	return seq, err
}

// BrokerStats attributes one broker's counters to the address they came
// from — the per-broker breakdown behind the cluster-wide Stats sum.
type BrokerStats struct {
	// Addr is the broker endpoint the counters were fetched from.
	Addr string
	// Stats holds that single broker's counters (DirectReads and
	// DirectStale are always zero here: the fast path is client-side
	// state, not any one broker's).
	Stats Stats
}

// StatsPerBroker fetches each reachable broker's counters individually,
// in endpoint order, attributing every count to the broker that
// reported it instead of folding the tier into one sum. Unreachable
// brokers are skipped; it fails only when no broker responds.
func (c *ClusterClient) StatsPerBroker(ctx context.Context) ([]BrokerStats, error) {
	if c.closed.Load() {
		return nil, errors.New("dynasore: cluster client is closed")
	}
	var out []BrokerStats
	var lastErr error
	for _, ep := range c.endpoints {
		cl, err := ep.client(ctx, c.poolSize)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := cl.Stats(ctx)
		if err != nil {
			if failover(err) {
				ep.fail()
			}
			lastErr = err
			continue
		}
		out = append(out, BrokerStats{Addr: ep.addr, Stats: fromClusterStats(st)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dynasore: no broker answered stats: %w", lastErr)
	}
	return out, nil
}

// Stats sums the counters of every reachable broker — cluster-wide
// activity rather than one broker's. It fails only when no broker
// responds. Use StatsPerBroker when the per-broker attribution matters.
func (c *ClusterClient) Stats(ctx context.Context) (Stats, error) {
	per, err := c.StatsPerBroker(ctx)
	if err != nil {
		return Stats{}, err
	}
	var sum Stats
	for _, bs := range per {
		st := bs.Stats
		sum.Reads += st.Reads
		sum.Writes += st.Writes
		sum.Replicated += st.Replicated
		sum.Evicted += st.Evicted
		sum.Migrated += st.Migrated
		sum.Misses += st.Misses
		sum.Checkpoints += st.Checkpoints
		sum.CompactedSegments += st.CompactedSegments
		sum.CatchupRecords += st.CatchupRecords
		sum.LeaseGrants += st.LeaseGrants
		if st.Epoch > sum.Epoch {
			sum.Epoch = st.Epoch
		}
	}
	if c.direct != nil {
		// This client's own fast-path activity: views served without the
		// broker, and attempts that fenced or failed back to it.
		sum.DirectReads, sum.DirectStale = c.direct.Counters()
	}
	return sum, nil
}

// Close closes every broker connection; in-flight requests fail.
func (c *ClusterClient) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	// Barrier against noteEpoch's closed-check-then-Add: once this lock
	// is acquired, no further refresh can be registered.
	c.refreshMu.Lock()
	c.refreshMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	for _, ep := range c.endpoints {
		ep.mu.Lock()
		ep.closed = true
		if ep.c != nil {
			ep.c.Close()
			ep.c = nil
		}
		ep.mu.Unlock()
	}
	c.refreshes.Wait()
	if c.direct != nil {
		c.direct.Close()
	}
	return nil
}
