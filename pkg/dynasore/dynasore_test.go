package dynasore_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dynasore/pkg/dynasore"
)

func openEngine(t *testing.T, cfg dynasore.EngineConfig) *dynasore.Engine {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	e, err := dynasore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// storeSmoke exercises the Store contract against any backend.
func storeSmoke(t *testing.T, s dynasore.Store) {
	t.Helper()
	ctx := context.Background()
	seq1, err := s.Write(ctx, 7, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := s.Write(ctx, 7, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if seq2 <= seq1 {
		t.Errorf("sequence numbers not increasing: %d then %d", seq1, seq2)
	}
	views, err := s.Read(ctx, []uint32{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("views = %d, want 2", len(views))
	}
	if len(views[0].Events) != 2 || string(views[0].Events[1]) != "second" {
		t.Errorf("view of 7 = %q", views[0].Events)
	}
	if len(views[1].Events) != 0 {
		t.Errorf("view of unknown user = %q, want empty", views[1].Events)
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes < 2 || st.Reads < 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineImplementsStore(t *testing.T) {
	storeSmoke(t, openEngine(t, dynasore.EngineConfig{}))
}

func TestClientImplementsStore(t *testing.T) {
	e := openEngine(t, dynasore.EngineConfig{})
	c, err := dynasore.Dial(context.Background(), e.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	storeSmoke(t, c)
}

func TestEngineAndClientShareTheCluster(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{})
	c, err := dynasore.Dial(ctx, e.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := e.Write(ctx, 1, []byte("via engine")); err != nil {
		t.Fatal(err)
	}
	views, err := c.Read(ctx, []uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || len(views[0].Events) != 1 || string(views[0].Events[0]) != "via engine" {
		t.Fatalf("views = %+v", views)
	}
}

func TestClientBatchedRead(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{})
	// Batch size 4 forces a 30-target read into 8 concurrent chunks.
	c, err := dynasore.Dial(ctx, e.Addr(), dynasore.WithPoolSize(3), dynasore.WithReadBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	targets := make([]uint32, 30)
	for i := range targets {
		targets[i] = uint32(i)
		if _, err := c.Write(ctx, uint32(i), []byte(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	views, err := c.Read(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != len(targets) {
		t.Fatalf("views = %d, want %d", len(views), len(targets))
	}
	for i, v := range views {
		want := fmt.Sprintf("u%d", i)
		if len(v.Events) != 1 || string(v.Events[0]) != want {
			t.Errorf("view %d = %q, want %q", i, v.Events, want)
		}
	}
}

func TestClientEmptyRead(t *testing.T) {
	e := openEngine(t, dynasore.EngineConfig{})
	c, err := dynasore.Dial(context.Background(), e.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	views, err := c.Read(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Errorf("views = %d, want 0", len(views))
	}
}

func TestContextCancellation(t *testing.T) {
	e := openEngine(t, dynasore.EngineConfig{})
	c, err := dynasore.Dial(context.Background(), e.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, s := range map[string]dynasore.Store{"engine": e, "client": c} {
		if _, err := s.Read(ctx, []uint32{1}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s Read err = %v, want context.Canceled", name, err)
		}
		if _, err := s.Write(ctx, 1, []byte("x")); !errors.Is(err, context.Canceled) {
			t.Errorf("%s Write err = %v, want context.Canceled", name, err)
		}
		if _, err := s.Stats(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("%s Stats err = %v, want context.Canceled", name, err)
		}
	}
}

func TestClientConcurrentUse(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{})
	c, err := dynasore.Dial(ctx, e.Addr(), dynasore.WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				u := uint32(w*100 + i)
				if _, err := c.Write(ctx, u, []byte("x")); err != nil {
					errs <- err
					return
				}
				if _, err := c.Read(ctx, []uint32{u}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHotViewReplicationThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{
		CacheServers: 3,
		Preferred:    2,
		PolicyEvery:  time.Hour,
		Policy:       dynasore.PolicyConfig{AdmissionEpsilon: 100},
	})
	// Pick a user homed away from the preferred server, so replication
	// onto it is profitable.
	hot := uint32(0)
	for e.HomeOf(hot) == 2 {
		hot++
	}
	if _, err := e.Write(ctx, hot, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Read(ctx, []uint32{hot}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.ReplicaCount(hot); got < 2 {
		t.Errorf("replicas = %d, want >= 2", got)
	}
}

func TestCrashedCacheServerFallsBackToWAL(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{CacheServers: 2, Preferred: -1})
	// A user homed on server 1, which stays up when server 0 crashes.
	u := uint32(0)
	for e.HomeOf(u) != 1 {
		u++
	}
	if _, err := e.Write(ctx, u, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := e.CrashCacheServer(0); err != nil {
		t.Fatal(err)
	}
	views, err := e.Read(ctx, []uint32{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || string(views[0].Events[0]) != "durable" {
		t.Fatalf("views = %+v", views)
	}
	if err := e.CrashCacheServer(5); err == nil {
		t.Error("out-of-range crash accepted")
	}
}

func TestOpenValidatesPreferred(t *testing.T) {
	if _, err := dynasore.Open(dynasore.EngineConfig{CacheServers: 2, Preferred: 7}); err == nil {
		t.Error("out-of-range preferred server accepted")
	}
	if _, err := dynasore.Open(dynasore.EngineConfig{CacheServers: 2, Preferred: -3}); err == nil {
		t.Error("preferred server below -1 accepted")
	}
}

func TestExplicitPlacementThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	// Server 1 shares the broker's rack; the policy must pick it (not the
	// Preferred default) as the replication target.
	e := openEngine(t, dynasore.EngineConfig{
		CacheServers: 2,
		Preferred:    -1,
		Placement: &dynasore.Placement{
			Broker:  dynasore.Position{Zone: 0, Rack: 0},
			Servers: []dynasore.Position{{Zone: 1, Rack: 0}, {Zone: 0, Rack: 0}},
		},
		PolicyEvery: time.Hour,
		Policy:      dynasore.PolicyConfig{AdmissionEpsilon: 100},
	})
	// A user homed on the remote server 0, so the rack-local server 1 is
	// the profitable replication target.
	hot := uint32(0)
	for e.HomeOf(hot) != 0 {
		hot++
	}
	if _, err := e.Write(ctx, hot, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := e.Read(ctx, []uint32{hot}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.ReplicaCount(hot); got < 2 {
		t.Errorf("replicas = %d, want >= 2 (policy should use the placed rack-local server)", got)
	}
	st, err := e.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replicated == 0 {
		t.Error("no replication recorded in stats")
	}
}

// TestCheckpointedRestartThroughPublicAPI drives the durability subsystem
// through the public surface: an Engine with checkpointing on a persistent
// data directory restarts from its parting snapshot (no WAL replay) and
// serves the same views; the checkpoint counter is visible in Stats.
func TestCheckpointedRestartThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	dataDir := t.TempDir()
	cfg := dynasore.EngineConfig{
		DataDir:         dataDir,
		CheckpointEvery: 20 * time.Millisecond,
		CompactAfter:    1,
	}
	e := openEngine(t, cfg)
	for i := 0; i < 40; i++ {
		if _, err := e.Write(ctx, uint32(i%4), []byte(fmt.Sprintf("event-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// At least one periodic checkpoint lands and surfaces in Stats.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := e.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Checkpoints >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st, _ := e.Stats(ctx); st.Checkpoints == 0 {
		t.Fatal("periodic checkpoints never surfaced in Stats")
	}
	want, err := e.Read(ctx, []uint32{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openEngine(t, cfg)
	got, err := e2.Read(ctx, []uint32{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Version != want[i].Version || len(got[i].Events) != len(want[i].Events) {
			t.Fatalf("user %d after restart: version %d/%d events, want %d/%d",
				i, got[i].Version, len(got[i].Events), want[i].Version, len(want[i].Events))
		}
	}
}

// TestBrokerRecoveryThroughPublicAPI checks ListenBroker's checkpointed
// restart reporting.
func TestBrokerRecoveryThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	s, err := dynasore.ListenCacheServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	cfg := dynasore.BrokerConfig{
		Addr:             "127.0.0.1:0",
		CacheServerAddrs: []string{s.Addr()},
		DataDir:          t.TempDir(),
		Preferred:        -1,
		CheckpointEvery:  time.Hour, // only the parting checkpoint
	}
	b, err := dynasore.ListenBroker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dynasore.Dial(ctx, b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := c.Write(ctx, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := dynasore.ListenBroker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	from, replayed := b2.Recovery()
	if !from || replayed != 0 {
		t.Fatalf("Recovery() = (%v, %d), want parting-checkpoint recovery with no replay", from, replayed)
	}
}
