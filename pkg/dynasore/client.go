package dynasore

import (
	"context"
	"sync"

	"dynasore/internal/cluster"
	"dynasore/internal/membership"
)

// DialOption customizes Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	poolSize     int
	batchSize    int
	direct       bool
	directLeases int
}

// WithPoolSize sets how many multiplexed connections the client keeps to
// the broker (default cluster.DefaultPoolSize).
func WithPoolSize(n int) DialOption {
	return func(c *dialConfig) { c.poolSize = n }
}

// WithReadBatchSize sets the chunk size above which a multi-user Read is
// split into concurrent batches across the pool (default 256). Zero or
// negative disables splitting.
func WithReadBatchSize(n int) DialOption {
	return func(c *dialConfig) { c.batchSize = n }
}

// WithDirectReads enables the direct-read fast path on clients dialed
// with DialCluster: the client leases hot users' replica sets from the
// broker and reads their views straight from the cache servers — one
// network hop instead of two — falling back to the broker whenever
// freshness cannot be proven (no lease, stale epoch, fenced placement).
// maxLeases bounds the client-side lease cache (<= 0 means
// cluster.DefaultMaxLeases). Dial, the single-broker backend, ignores
// the option.
func WithDirectReads(maxLeases int) DialOption {
	return func(c *dialConfig) {
		c.direct = true
		c.directLeases = maxLeases
	}
}

// Client is the network backend of Store: it speaks wire protocol v2 to a
// remote broker, multiplexing concurrent requests over a small connection
// pool, and splits large multi-user reads into concurrent batches.
type Client struct {
	c         *cluster.ClientV2
	batchSize int
}

var _ Store = (*Client)(nil)

// Dial connects to a broker (as started by ListenBroker, Open, or the
// dynasore-node command) and negotiates protocol v2.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{batchSize: 256}
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := cluster.DialV2(ctx, addr, cfg.poolSize)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, batchSize: cfg.batchSize}, nil
}

// Read fetches the views of every user in targets, in order. Target lists
// larger than the read batch size are fetched as concurrent chunks and
// reassembled, so one huge feed read does not serialize behind a single
// round trip.
func (c *Client) Read(ctx context.Context, targets []uint32) ([]View, error) {
	if len(targets) == 0 {
		return []View{}, nil
	}
	if c.batchSize <= 0 || len(targets) <= c.batchSize {
		views, err := c.c.Read(ctx, targets)
		if err != nil {
			return nil, err
		}
		return fromClusterViews(views), nil
	}
	out := make([]View, len(targets))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for start := 0; start < len(targets); start += c.batchSize {
		end := min(start+c.batchSize, len(targets))
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			// ClientV2.Read guarantees len(views) == end-start on success,
			// so the reassembly below cannot write out of range.
			views, err := c.c.Read(ctx, targets[start:end])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			for i, v := range views {
				out[start+i] = fromClusterView(v)
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Write appends payload to user's view and returns its sequence number.
func (c *Client) Write(ctx context.Context, user uint32, payload []byte) (uint64, error) {
	return c.c.Write(ctx, user, payload)
}

// Stats returns a snapshot of the broker's counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	st, err := c.c.Stats(ctx)
	if err != nil {
		return Stats{}, err
	}
	return fromClusterStats(st), nil
}

// Epoch returns the highest membership epoch this client has observed in
// broker responses (0 before the first call).
func (c *Client) Epoch() uint64 { return c.c.Epoch() }

// Membership returns the cluster's current cache-server set.
func (c *Client) Membership(ctx context.Context) (Membership, error) {
	info, err := c.c.Membership(ctx)
	if err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(info), nil
}

// AddServer admits a new cache server into the cluster (the broker
// forwards to the leader if needed) and returns the new membership.
func (c *Client) AddServer(ctx context.Context, addr string, pos Position, capacity int) (Membership, error) {
	info, err := c.c.AddServer(ctx, membership.ServerInfo{
		Addr: addr, Zone: pos.Zone, Rack: pos.Rack, Capacity: capacity,
	})
	if err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(info), nil
}

// DrainServer starts decommissioning the cache server at addr.
func (c *Client) DrainServer(ctx context.Context, addr string) (Membership, error) {
	info, err := c.c.DrainServer(ctx, addr)
	if err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(info), nil
}

// RemoveServer retires the cache server at addr from the cluster.
func (c *Client) RemoveServer(ctx context.Context, addr string) (Membership, error) {
	info, err := c.c.RemoveServer(ctx, addr)
	if err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(info), nil
}

var _ Admin = (*Client)(nil)

// Close closes the pooled connections; in-flight requests fail.
func (c *Client) Close() error { return c.c.Close() }
