package dynasore_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dynasore/pkg/dynasore"
)

// TestEngineElasticMembership drives the Admin API through the in-process
// Engine: grow the cluster with an externally started cache server, watch
// homes rebalance, then drain and remove it again.
func TestEngineElasticMembership(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{
		CacheServers: 2,
		Preferred:    -1,
		PolicyEvery:  50 * time.Millisecond,
		Policy:       dynasore.PolicyConfig{AdmissionEpsilon: 1e12},
	})
	const users = 100
	for u := uint32(0); u < users; u++ {
		if _, err := e.Write(ctx, u, []byte(fmt.Sprintf("u%d", u))); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Read(ctx, []uint32{u}); err != nil {
			t.Fatal(err)
		}
	}
	before := make([]int, users)
	for u := range before {
		before[u] = e.HomeOf(uint32(u))
	}

	s, err := dynasore.ListenCacheServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	m, err := e.AddServer(ctx, s.Addr(), dynasore.Position{Zone: 2, Rack: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || len(m.Servers) != 3 || m.NumActive() != 3 {
		t.Fatalf("membership after add: %+v", m)
	}
	moved := 0
	for u := range before {
		if h := e.HomeOf(uint32(u)); h != before[u] {
			moved++
			if h != 2 {
				t.Fatalf("user %d moved to slot %d, want the new slot 2", u, h)
			}
		}
	}
	if moved == 0 || moved >= users*6/10 {
		t.Fatalf("add moved %d/%d homes, want fair share below 60%%", moved, users)
	}
	// The rebalance pass copies the moved views onto the new server.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m, err = e.Membership(ctx); err != nil {
			t.Fatal(err)
		}
		if m.Servers[2].Replicas > 0 && s.NumViews() > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m.Servers[2].Replicas == 0 || s.NumViews() == 0 {
		t.Fatalf("new server took no replicas: %+v, cached %d", m.Servers[2], s.NumViews())
	}

	// Drain it again: replicas fall to zero, reads keep serving all data.
	if m, err = e.DrainServer(ctx, s.Addr()); err != nil {
		t.Fatal(err)
	}
	if m.Servers[2].State != dynasore.ServerDraining {
		t.Fatalf("state after drain = %v", m.Servers[2].State)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m, err = e.Membership(ctx); err != nil {
			t.Fatal(err)
		}
		if m.Servers[2].Replicas == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m.Servers[2].Replicas != 0 {
		t.Fatalf("drained server still holds %d replicas", m.Servers[2].Replicas)
	}
	for u := uint32(0); u < users; u++ {
		views, err := e.Read(ctx, []uint32{u})
		if err != nil {
			t.Fatalf("read during drain: %v", err)
		}
		if len(views[0].Events) == 0 {
			t.Fatalf("user %d lost its events during the drain", u)
		}
	}
	if m, err = e.RemoveServer(ctx, s.Addr()); err != nil {
		t.Fatal(err)
	}
	if m.Servers[2].State != dynasore.ServerDead || m.Epoch != 4 {
		t.Fatalf("after remove: %+v", m)
	}
	st, err := e.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 {
		t.Errorf("Stats.Epoch = %d, want 4", st.Epoch)
	}
}
