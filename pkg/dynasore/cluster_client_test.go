package dynasore

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"
)

// startBrokerCluster launches nServers cache servers and three standalone
// brokers with per-broker WALs, peered into one cluster, and returns the
// brokers plus their addresses.
func startBrokerCluster(t *testing.T, nServers int) ([]*Broker, []string) {
	t.Helper()
	var serverAddrs []string
	for i := 0; i < nServers; i++ {
		s, err := ListenCacheServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		serverAddrs = append(serverAddrs, s.Addr())
	}
	// Every broker needs the full peer list before starting, so reserve
	// the cluster's listeners first.
	const n = 3
	lns := make([]net.Listener, n)
	peers := make([]BrokerPeer, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
		peers[i] = BrokerPeer{Addr: addrs[i], Pos: Position{Zone: i, Rack: 0}}
	}
	serverPos := make([]Position, nServers)
	for i := range serverPos {
		serverPos[i] = Position{Zone: i % n, Rack: 1}
	}
	brokers := make([]*Broker, n)
	for i := range brokers {
		b, err := ListenBroker(BrokerConfig{
			Listener:         lns[i],
			CacheServerAddrs: serverAddrs,
			DataDir:          t.TempDir(),
			Placement:        &Placement{Broker: peers[i].Pos, Servers: serverPos},
			Peers:            peers,
			Self:             i,
			SyncEvery:        50 * time.Millisecond,
			PolicyEvery:      time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		brokers[i] = b
	}
	return brokers, addrs
}

func TestDialClusterServesAndFailsOver(t *testing.T) {
	brokers, addrs := startBrokerCluster(t, 4)
	ctx := context.Background()
	c, err := DialCluster(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const users = 20
	for u := uint32(0); u < users; u++ {
		if _, err := c.Write(ctx, u, []byte(fmt.Sprintf("u%d", u))); err != nil {
			t.Fatal(err)
		}
	}
	targets := make([]uint32, users)
	for i := range targets {
		targets[i] = uint32(i)
	}
	views, err := c.Read(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range views {
		want := fmt.Sprintf("u%d", i)
		if len(v.Events) != 1 || string(v.Events[0]) != want {
			t.Fatalf("view %d = %q, want %q", i, v.Events, want)
		}
	}
	// Separate Read calls round-robin across the broker tier.
	for u := uint32(0); u < users; u++ {
		if _, err := c.Read(ctx, []uint32{u}); err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin spread the reads: more than one broker served.
	serving := 0
	for _, b := range brokers {
		// Each broker's own counters are visible through Dial; the
		// aggregate through the cluster client covers all of them.
		one, err := Dial(ctx, b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		st, err := one.Stats(ctx)
		one.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Reads > 0 {
			serving++
		}
	}
	if serving < 2 {
		t.Errorf("reads hit %d brokers, want >= 2 (round robin)", serving)
	}
	agg, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Writes != users {
		t.Errorf("aggregated writes = %d, want %d", agg.Writes, users)
	}

	// Kill one broker: the client fails over and the cluster keeps
	// serving both paths.
	if err := brokers[2].Close(); err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < users; u++ {
		if _, err := c.Write(ctx, u, []byte("after-death")); err != nil {
			t.Fatalf("write after broker death: %v", err)
		}
	}
	views, err = c.Read(ctx, targets)
	if err != nil {
		t.Fatalf("read after broker death: %v", err)
	}
	for i, v := range views {
		if len(v.Events) != 2 || string(v.Events[1]) != "after-death" {
			t.Fatalf("view %d after death = %q", i, v.Events)
		}
	}
}

// TestClusterClientRefreshesMembershipOnNewEpoch verifies the end-to-end
// epoch plumbing: read/write responses carry the broker's membership
// epoch, and the cluster client notices an advance and refreshes its
// cached server table without being asked.
func TestClusterClientRefreshesMembershipOnNewEpoch(t *testing.T) {
	ctx := context.Background()
	_, addrs := startBrokerCluster(t, 2)
	c, err := DialCluster(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Write(ctx, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 1 {
		t.Fatalf("epoch after first write = %d, want 1", got)
	}

	s, err := ListenCacheServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	// Mutate through the client itself — any broker works, followers
	// forward to the leader.
	m, err := c.AddServer(ctx, s.Addr(), Position{Zone: 2, Rack: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 {
		t.Fatalf("epoch after add = %d, want 2", m.Epoch)
	}

	// Every broker converges; ordinary traffic then carries epoch 2 and
	// the client's cached membership follows.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Read(ctx, []uint32{1}); err != nil {
			t.Fatal(err)
		}
		if cached, ok := c.CachedMembership(); ok && cached.Epoch >= 2 && c.Epoch() >= 2 {
			if len(cached.Servers) != 3 {
				t.Fatalf("cached membership has %d servers, want 3", len(cached.Servers))
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never refreshed: epoch=%d", c.Epoch())
}

func TestDialClusterRequiresReachableBroker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := DialCluster(ctx, []string{"127.0.0.1:1"}); err == nil {
		t.Error("DialCluster with only an unreachable broker succeeded")
	}
	if _, err := DialCluster(ctx, nil); err == nil {
		t.Error("DialCluster with no addresses succeeded")
	}
}

func TestMultiBrokerLeaderVisibleThroughPublicAPI(t *testing.T) {
	brokers, _ := startBrokerCluster(t, 3)
	if !brokers[0].IsLeader() {
		t.Error("smallest-position broker is not leader")
	}
	for i, b := range brokers {
		if got := b.Leader(); got != 0 {
			t.Errorf("broker %d reports leader %d, want 0", i, got)
		}
	}
	// Placement decisions propagate: hammer a view homed away from zone 2
	// through the zone-2 follower and wait for all brokers to agree on a
	// >= 2 replica set.
	hot := uint32(0)
	for brokers[0].HomeOf(hot) == 2 {
		hot++
	}
	ctx := context.Background()
	c, err := Dial(ctx, brokers[2].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(ctx, hot, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Read(ctx, []uint32{hot}); err != nil {
			t.Fatal(err)
		}
		s0, s2 := brokers[0].ReplicaSet(hot), brokers[2].ReplicaSet(hot)
		if len(s0) >= 2 && len(s0) == len(s2) && s0[0] == s2[0] && s0[1] == s2[1] {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica sets did not converge: %v / %v", brokers[0].ReplicaSet(hot), brokers[2].ReplicaSet(hot))
}
