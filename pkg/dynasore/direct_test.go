package dynasore_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynasore/pkg/dynasore"
)

// TestDirectReadsBasic exercises the fast path on a quiet cluster: the
// first read of a user goes through the broker and leases it, later reads
// go straight to the cache servers, and the results stay identical to the
// broker path's.
func TestDirectReadsBasic(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{CacheServers: 3, Preferred: 0})
	c, err := dynasore.DialCluster(ctx, []string{e.Addr()}, dynasore.WithDirectReads(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const users = 20
	for u := uint32(0); u < users; u++ {
		if _, err := c.Write(ctx, u, []byte(fmt.Sprintf("post of %d", u))); err != nil {
			t.Fatal(err)
		}
	}
	targets := make([]uint32, users)
	for i := range targets {
		targets[i] = uint32(i)
	}
	// First read: all broker, kicks off background leasing. Keep reading
	// until the fast path serves; leases arrive within a few round trips.
	deadline := time.Now().Add(5 * time.Second)
	for {
		views, err := c.Read(ctx, targets)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range views {
			if len(v.Events) != 1 || string(v.Events[0]) != fmt.Sprintf("post of %d", i) {
				t.Fatalf("view of user %d = %+v", i, v)
			}
		}
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.DirectReads > 0 {
			if st.LeaseGrants == 0 {
				t.Errorf("direct reads served but LeaseGrants = 0: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no direct read served: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A write invalidates nothing — the direct path must still serve the
	// new version (replicas are updated synchronously on the write path).
	if _, err := c.Write(ctx, 3, []byte("second")); err != nil {
		t.Fatal(err)
	}
	views, err := c.Read(ctx, []uint32{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(views[0].Events) != 2 {
		t.Fatalf("after write, view = %+v", views[0])
	}
}

// TestDirectReadsSurviveChurn is the churn acceptance test of the
// direct-read fast path: readers lease views and read them directly while
// the cluster grows 2 → 4, a server holding replicas is drained (forcing
// its views — including the hot users' — to migrate out) and removed.
// Requirements: zero failed reads, zero wrong-version reads (every
// reader observes each user's version monotonically), and the fast path
// actually served (DirectReads > 0).
func TestDirectReadsSurviveChurn(t *testing.T) {
	ctx := context.Background()
	e := openEngine(t, dynasore.EngineConfig{
		CacheServers: 2,
		Preferred:    -1,
		PolicyEvery:  50 * time.Millisecond,
		MaxReplicas:  3,
	})
	c, err := dynasore.DialCluster(ctx, []string{e.Addr()}, dynasore.WithDirectReads(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const users = 40
	for u := uint32(0); u < users; u++ {
		if _, err := c.Write(ctx, u, []byte(fmt.Sprintf("seed %d", u))); err != nil {
			t.Fatal(err)
		}
	}
	targets := make([]uint32, users)
	for i := range targets {
		targets[i] = uint32(i)
	}
	// Warm the lease cache before the churn starts.
	for i := 0; i < 5; i++ {
		if _, err := c.Read(ctx, targets); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var failed atomic.Int64
	var wrong atomic.Int64
	var wg sync.WaitGroup
	// Readers: each keeps its own high-water mark per user; a view below
	// it is a wrong-version read — the fencing failed.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := make([]uint64, users)
			for {
				select {
				case <-stop:
					return
				default:
				}
				views, err := c.Read(ctx, targets)
				if err != nil {
					failed.Add(1)
					return
				}
				for i, v := range views {
					if v.Version < seen[i] {
						wrong.Add(1)
					} else {
						seen[i] = v.Version
					}
				}
			}
		}()
	}
	// One writer keeps versions moving, so a stale replica would be
	// observable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := uint32(i % users)
			if _, err := c.Write(ctx, u, []byte("churn post")); err != nil {
				failed.Add(1)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Grow 2 → 4 while the readers run.
	var added []*dynasore.CacheServer
	for i := 0; i < 2; i++ {
		s, err := dynasore.ListenCacheServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		added = append(added, s)
		if _, err := c.AddServer(ctx, s.Addr(), dynasore.Position{Zone: 2 + i, Rack: 0}, 0); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Let the rebalance pass migrate views onto the new servers, then
	// drain an original server: every view it still holds — hot users
	// included — is forced to migrate out while direct reads target it.
	time.Sleep(300 * time.Millisecond)
	m, err := c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Servers[0].Addr
	if _, err := c.DrainServer(ctx, victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err = c.Membership(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Servers[0].Replicas == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never completed: %+v", m.Servers[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := c.RemoveServer(ctx, victim); err != nil {
		t.Fatal(err)
	}
	// Keep reading a little past the removal, then stop.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Errorf("%d reads/writes failed during churn", n)
	}
	if n := wrong.Load(); n != 0 {
		t.Errorf("%d wrong-version reads during churn", n)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirectReads == 0 {
		t.Errorf("fast path never served during churn: %+v", st)
	}
	// Final consistency: every user still has all its events, served
	// through a fresh broker-path read.
	views, err := c.Read(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range views {
		if len(v.Events) == 0 {
			t.Errorf("user %d lost its events during churn: %+v", i, v)
		}
	}
}
