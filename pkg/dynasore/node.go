package dynasore

import (
	"time"

	"dynasore/internal/cluster"
)

// CacheServer is one standalone in-memory cache node, holding view replicas
// for brokers. Views live only in memory — durability is the broker's
// persistent store's job.
type CacheServer struct {
	s *cluster.Server
}

// ListenCacheServer starts a cache server on addr ("127.0.0.1:0" picks an
// ephemeral port).
func ListenCacheServer(addr string) (*CacheServer, error) {
	s, err := cluster.NewServer(addr)
	if err != nil {
		return nil, err
	}
	return &CacheServer{s: s}, nil
}

// Addr returns the server's listen address.
func (s *CacheServer) Addr() string { return s.s.Addr() }

// NumViews returns how many views the server currently holds.
func (s *CacheServer) NumViews() int { return s.s.NumViews() }

// Close stops the server and drops every open connection.
func (s *CacheServer) Close() error { return s.s.Close() }

// BrokerConfig configures a standalone broker node.
type BrokerConfig struct {
	// Addr is the client-facing listen address ("127.0.0.1:0" for tests).
	Addr string
	// CacheServerAddrs lists the cache servers, in a fixed cluster-wide
	// order.
	CacheServerAddrs []string
	// DataDir holds the write-ahead log of the persistent store.
	DataDir string
	// ViewCap bounds events kept per view (default 64).
	ViewCap int
	// Placement positions the broker and every cache server in the
	// datacenter tree the placement policy plans over. Nil derives a
	// default layout from Preferred.
	Placement *Placement
	// Preferred is the index of the broker's "rack-local" cache server.
	// When Placement is nil it seeds the default layout: that server
	// shares the broker's rack and every other server sits in a remote
	// zone. -1 disables preference; values below -1 are invalid.
	Preferred int
	// MaxReplicas bounds a view's replication degree (default 3).
	MaxReplicas int
	// PolicyEvery is the interval of the placement policy's maintenance
	// pass (default 5s).
	PolicyEvery time.Duration
	// Policy tunes the shared placement policy.
	Policy PolicyConfig
	// ServerCapacity bounds how many views the policy places on one cache
	// server (0 = unbounded).
	ServerCapacity int
}

// Broker is one standalone broker node: it serves the Read/Write API to v1
// and v2 clients, persists writes to its WAL, and drives replica placement
// across its cache servers with the shared DynaSoRe policy (§3).
type Broker struct {
	b *cluster.Broker
}

// ListenBroker starts a broker node.
func ListenBroker(cfg BrokerConfig) (*Broker, error) {
	b, err := cluster.NewBroker(cluster.BrokerConfig{
		Addr:           cfg.Addr,
		ServerAddrs:    cfg.CacheServerAddrs,
		DataDir:        cfg.DataDir,
		ViewCap:        cfg.ViewCap,
		Placement:      cfg.Placement.toCluster(),
		Preferred:      cfg.Preferred,
		MaxReplicas:    cfg.MaxReplicas,
		PolicyEvery:    cfg.PolicyEvery,
		Policy:         cfg.Policy.toCluster(),
		ServerCapacity: cfg.ServerCapacity,
	})
	if err != nil {
		return nil, err
	}
	return &Broker{b: b}, nil
}

// Addr returns the broker's client-facing address.
func (b *Broker) Addr() string { return b.b.Addr() }

// ReplicaCount returns the current replication degree of user's view.
func (b *Broker) ReplicaCount(user uint32) int { return b.b.ReplicaCount(user) }

// Close stops the broker, its server connections, and the persistent store.
func (b *Broker) Close() error { return b.b.Close() }
