package dynasore

import (
	"time"

	"dynasore/internal/cluster"
)

// CacheServer is one standalone in-memory cache node, holding view replicas
// for brokers. Views live only in memory — durability is the broker's
// persistent store's job.
type CacheServer struct {
	s *cluster.Server
}

// ListenCacheServer starts a cache server on addr ("127.0.0.1:0" picks an
// ephemeral port).
func ListenCacheServer(addr string) (*CacheServer, error) {
	s, err := cluster.NewServer(addr)
	if err != nil {
		return nil, err
	}
	return &CacheServer{s: s}, nil
}

// Addr returns the server's listen address.
func (s *CacheServer) Addr() string { return s.s.Addr() }

// NumViews returns how many views the server currently holds.
func (s *CacheServer) NumViews() int { return s.s.NumViews() }

// Close stops the server and drops every open connection.
func (s *CacheServer) Close() error { return s.s.Close() }

// BrokerConfig configures a standalone broker node.
type BrokerConfig struct {
	// Addr is the client-facing listen address ("127.0.0.1:0" for tests).
	Addr string
	// CacheServerAddrs lists the cache servers, in a fixed cluster-wide
	// order.
	CacheServerAddrs []string
	// DataDir holds the write-ahead log of the persistent store.
	DataDir string
	// ViewCap bounds events kept per view (default 64).
	ViewCap int
	// Preferred is the index of the broker's "rack-local" cache server,
	// the replication target for hot views (§3.2). -1 disables preference.
	Preferred int
	// HotReads is how many reads within a decay interval mark a view hot
	// enough to replicate locally (default 8).
	HotReads int
	// MaxReplicas bounds a view's replication degree (default 3).
	MaxReplicas int
	// DecayEvery is the interval of the counter decay / cold-replica
	// eviction pass (default 5s).
	DecayEvery time.Duration
}

// Broker is one standalone broker node: it serves the Read/Write API to v1
// and v2 clients, persists writes to its WAL, and replicates hot views onto
// its preferred cache server.
type Broker struct {
	b *cluster.Broker
}

// ListenBroker starts a broker node.
func ListenBroker(cfg BrokerConfig) (*Broker, error) {
	b, err := cluster.NewBroker(cluster.BrokerConfig{
		Addr:        cfg.Addr,
		ServerAddrs: cfg.CacheServerAddrs,
		DataDir:     cfg.DataDir,
		ViewCap:     cfg.ViewCap,
		Preferred:   cfg.Preferred,
		HotReads:    cfg.HotReads,
		MaxReplicas: cfg.MaxReplicas,
		DecayEvery:  cfg.DecayEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Broker{b: b}, nil
}

// Addr returns the broker's client-facing address.
func (b *Broker) Addr() string { return b.b.Addr() }

// ReplicaCount returns the current replication degree of user's view.
func (b *Broker) ReplicaCount(user uint32) int { return b.b.ReplicaCount(user) }

// Close stops the broker, its server connections, and the persistent store.
func (b *Broker) Close() error { return b.b.Close() }
