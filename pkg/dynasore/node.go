package dynasore

import (
	"net"
	"time"

	"dynasore/internal/cluster"
	"dynasore/internal/wal"
)

// PersistentStore is the WAL-backed durable view store brokers write
// through (§3.3). Open one explicitly only to share it between several
// in-process brokers of a multi-broker cluster; a standalone broker opens
// its own from BrokerConfig.DataDir.
type PersistentStore struct {
	vs *wal.ViewStore
}

// OpenStore opens (or recovers) a persistent store in dir, keeping up to
// viewCap events per user view (default 64).
func OpenStore(dir string, viewCap int) (*PersistentStore, error) {
	vs, err := wal.OpenViewStore(dir, viewCap, wal.Options{})
	if err != nil {
		return nil, err
	}
	return &PersistentStore{vs: vs}, nil
}

// Users returns the number of users with at least one durable event.
func (s *PersistentStore) Users() int { return s.vs.Users() }

// Close closes the underlying write-ahead log. Close the brokers sharing
// the store first.
func (s *PersistentStore) Close() error { return s.vs.Close() }

// BrokerPeer identifies one broker of a multi-broker cluster: the address
// its peers dial it on and its position in the datacenter tree — the
// paper's broker-per-front-end-cluster anchoring.
type BrokerPeer struct {
	Addr string
	Pos  Position
}

// CacheServer is one standalone in-memory cache node, holding view replicas
// for brokers. Views live only in memory — durability is the broker's
// persistent store's job.
type CacheServer struct {
	s *cluster.Server
}

// ListenCacheServer starts a cache server on addr ("127.0.0.1:0" picks an
// ephemeral port).
func ListenCacheServer(addr string) (*CacheServer, error) {
	s, err := cluster.NewServer(addr)
	if err != nil {
		return nil, err
	}
	return &CacheServer{s: s}, nil
}

// Addr returns the server's listen address.
func (s *CacheServer) Addr() string { return s.s.Addr() }

// NumViews returns how many views the server currently holds.
func (s *CacheServer) NumViews() int { return s.s.NumViews() }

// Close stops the server and drops every open connection.
func (s *CacheServer) Close() error { return s.s.Close() }

// BrokerConfig configures a standalone broker node.
type BrokerConfig struct {
	// Addr is the client-facing listen address ("127.0.0.1:0" for tests).
	Addr string
	// Listener, when non-nil, is used instead of listening on Addr — so an
	// embedding process can reserve the ports of a whole broker cluster
	// (and build its Peers list) before starting any of its brokers.
	Listener net.Listener
	// CacheServerAddrs lists the cache servers, in a fixed cluster-wide
	// order.
	CacheServerAddrs []string
	// DataDir holds the write-ahead log of the persistent store.
	DataDir string
	// ViewCap bounds events kept per view (default 64).
	ViewCap int
	// Placement positions the broker and every cache server in the
	// datacenter tree the placement policy plans over. Nil derives a
	// default layout from Preferred.
	Placement *Placement
	// Preferred is the index of the broker's "rack-local" cache server.
	// When Placement is nil it seeds the default layout: that server
	// shares the broker's rack and every other server sits in a remote
	// zone. -1 disables preference; values below -1 are invalid.
	Preferred int
	// MaxReplicas bounds a view's replication degree (default 3).
	MaxReplicas int
	// PolicyEvery is the interval of the placement policy's maintenance
	// pass (default 5s).
	PolicyEvery time.Duration
	// Policy tunes the shared placement policy.
	Policy PolicyConfig
	// ServerCapacity bounds how many views the policy places on one cache
	// server (0 = unbounded).
	ServerCapacity int
	// Peers lists every broker of a multi-broker cluster — including this
	// one — in a fixed cluster-wide order shared by all brokers; Peers[Self]
	// describes this broker. Empty means a single-broker cluster. The
	// brokers keep their placement tables converged over a peer-sync
	// protocol and elect the smallest-position peer to run the placement
	// policy over the whole cluster's traffic.
	Peers []BrokerPeer
	// Self is this broker's index in Peers.
	Self int
	// SyncEvery is the interval of the peer-sync pass (default 1s).
	SyncEvery time.Duration
	// Store, when non-nil, is a shared in-process persistent store used
	// instead of DataDir; the broker does not close it. Without it, each
	// broker of a multi-broker cluster keeps its own WAL and writes are
	// replicated between the logs.
	Store *PersistentStore
	// CheckpointEvery enables the durability/recovery subsystem: the
	// broker periodically snapshots its persistent store to an atomic
	// checkpoint file in DataDir (plus a parting snapshot on Close), and
	// restarts load the snapshot and replay only the WAL tail. Zero
	// disables periodic checkpoints. Ignored when Store is set — a shared
	// store is its owner's to checkpoint.
	CheckpointEvery time.Duration
	// CompactAfter enables WAL compaction: after a checkpoint, if at
	// least this many whole WAL segments are fully covered by it, they
	// are deleted. Zero keeps every segment.
	CompactAfter int
	// WALSyncEvery is the WAL's group-commit cadence: fsync after every
	// WALSyncEvery-th append (and always on segment rotation and Close).
	// Zero keeps the prototype default of trusting the OS page cache.
	// Ignored when Store is set — a shared store's durability knobs are
	// fixed when it is opened.
	WALSyncEvery int
}

// Broker is one standalone broker node: it serves the Read/Write API to v1
// and v2 clients, persists writes to its WAL, and drives replica placement
// across its cache servers with the shared DynaSoRe policy (§3). In a
// multi-broker cluster (Peers) it additionally pings its peers, takes part
// in leader election, and keeps its placement table synced.
type Broker struct {
	b *cluster.Broker
}

// ListenBroker starts a broker node.
func ListenBroker(cfg BrokerConfig) (*Broker, error) {
	var store *wal.ViewStore
	if cfg.Store != nil {
		store = cfg.Store.vs
	}
	peers := make([]cluster.PeerInfo, len(cfg.Peers))
	for i, p := range cfg.Peers {
		peers[i] = cluster.PeerInfo{Addr: p.Addr, Pos: cluster.Position(p.Pos)}
	}
	b, err := cluster.NewBroker(cluster.BrokerConfig{
		Addr:            cfg.Addr,
		Listener:        cfg.Listener,
		ServerAddrs:     cfg.CacheServerAddrs,
		DataDir:         cfg.DataDir,
		ViewCap:         cfg.ViewCap,
		Placement:       cfg.Placement.toCluster(),
		Preferred:       cfg.Preferred,
		MaxReplicas:     cfg.MaxReplicas,
		PolicyEvery:     cfg.PolicyEvery,
		Policy:          cfg.Policy.toCluster(),
		ServerCapacity:  cfg.ServerCapacity,
		Peers:           peers,
		Self:            cfg.Self,
		SyncEvery:       cfg.SyncEvery,
		Store:           store,
		CheckpointEvery: cfg.CheckpointEvery,
		CompactAfter:    cfg.CompactAfter,
		WALSyncEvery:    cfg.WALSyncEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Broker{b: b}, nil
}

// Addr returns the broker's client-facing address.
func (b *Broker) Addr() string { return b.b.Addr() }

// ReplicaCount returns the current replication degree of user's view.
func (b *Broker) ReplicaCount(user uint32) int { return b.b.ReplicaCount(user) }

// ReplicaSet returns the cache-server indices currently holding user's
// view (home first), as observed by this broker. In a converged
// multi-broker cluster every broker returns the same set.
func (b *Broker) ReplicaSet(user uint32) []int { return b.b.ReplicaSet(user) }

// HomeOf reports the cache-server slot user's view homes on under the
// broker's current membership epoch (rendezvous hashing over the active
// servers — identical on every broker of the cluster).
func (b *Broker) HomeOf(user uint32) int { return b.b.HomeOf(user) }

// Epoch returns the broker's current membership epoch.
func (b *Broker) Epoch() uint64 { return b.b.Epoch() }

// Membership returns the broker's current view of the cluster's
// cache-server set, with per-slot replica counts.
func (b *Broker) Membership() Membership { return fromClusterMembership(b.b.Membership()) }

// IsLeader reports whether this broker currently runs the placement policy
// for its cluster. A single-broker cluster is always its own leader.
func (b *Broker) IsLeader() bool { return b.b.IsLeader() }

// Recovery reports how the broker's persistent store came up: whether a
// checkpoint seeded it, and how many WAL records were replayed on top (the
// whole log when no usable checkpoint existed).
func (b *Broker) Recovery() (fromCheckpoint bool, replayed int) { return b.b.Recovery() }

// Leader returns the index (in BrokerConfig.Peers) of the broker this node
// currently considers the placement-policy leader.
func (b *Broker) Leader() int { return b.b.Leader() }

// Stats returns a snapshot of this broker's own counters (one node's,
// not cluster-summed — compare ClusterClient.Stats).
func (b *Broker) Stats() Stats { return fromClusterStats(b.b.Stats()) }

// Close stops the broker, its server and peer connections, and — unless it
// was handed a shared Store — the persistent store.
func (b *Broker) Close() error { return b.b.Close() }
