package dynasore_test

import (
	"context"
	"errors"
	"testing"

	"dynasore/pkg/dynasore"
)

// Admin errors must keep their sentinel identity through the whole network
// stack — broker dispatch, respError encoding, the v2 client — so callers
// (the HTTP gateway's status mapping above all) can classify them with
// errors.Is instead of matching on error text.
func TestAdminSentinelsSurviveTheWire(t *testing.T) {
	e, err := dynasore.Open(dynasore.EngineConfig{CacheServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	c, err := dynasore.Dial(ctx, e.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.DrainServer(ctx, "127.0.0.1:1"); !errors.Is(err, dynasore.ErrNoSuchServer) {
		t.Errorf("drain of unknown server = %v, want ErrNoSuchServer", err)
	}
	m, err := c.Membership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Same address, different position: not the idempotent re-registration
	// case, so the broker must reject the duplicate.
	if _, err := c.AddServer(ctx, m.Servers[0].Addr, dynasore.Position{Zone: 9, Rack: 9}, 0); !errors.Is(err, dynasore.ErrDuplicateServer) {
		t.Errorf("re-add at new position = %v, want ErrDuplicateServer", err)
	}
	if _, err := c.DrainServer(ctx, m.Servers[0].Addr); err != nil {
		t.Fatalf("drain first server: %v", err)
	}
	if _, err := c.DrainServer(ctx, m.Servers[1].Addr); !errors.Is(err, dynasore.ErrLastActive) {
		t.Errorf("drain of last active = %v, want ErrLastActive", err)
	}

	// The same classifications hold via the cluster client.
	cc, err := dynasore.DialCluster(ctx, []string{e.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if _, err := cc.RemoveServer(ctx, "127.0.0.1:1"); !errors.Is(err, dynasore.ErrNoSuchServer) {
		t.Errorf("cluster-client remove of unknown server = %v, want ErrNoSuchServer", err)
	}
}
