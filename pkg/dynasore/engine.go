package dynasore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"dynasore/internal/cluster"
	"dynasore/internal/membership"
)

// EngineConfig configures an in-process cluster.
type EngineConfig struct {
	// CacheServers is how many cache nodes to start (default 3).
	CacheServers int
	// DataDir holds the broker's write-ahead log. Empty means a temporary
	// directory that is removed on Close (views then survive cache wipes,
	// but not Engine restarts).
	DataDir string
	// ViewCap bounds events kept per view (default 64).
	ViewCap int
	// Placement positions the broker and every cache server in the
	// datacenter tree the placement policy plans over. Nil derives a
	// default layout from Preferred.
	Placement *Placement
	// Preferred is the index of the broker's "rack-local" cache server.
	// When Placement is nil it seeds the default layout: that server
	// shares the broker's rack (so hot views replicate onto it) and every
	// other server sits in a remote zone. -1 means no local server; the
	// default 0 prefers the first server. Values below -1 are invalid.
	Preferred int
	// MaxReplicas bounds a view's replication degree (default 3).
	MaxReplicas int
	// PolicyEvery is the interval of the placement policy's maintenance
	// pass (default 5s).
	PolicyEvery time.Duration
	// Policy tunes the shared placement policy.
	Policy PolicyConfig
	// ServerCapacity bounds how many views the policy places on one cache
	// server (0 = unbounded).
	ServerCapacity int
	// CheckpointEvery enables periodic checkpoints of the persistent
	// store: restarts on the same DataDir load the latest snapshot and
	// replay only the WAL tail. Zero disables them. Pair with a
	// persistent DataDir — a temporary directory is removed on Close.
	CheckpointEvery time.Duration
	// CompactAfter deletes WAL segments once at least this many are fully
	// covered by a checkpoint. Zero keeps every segment.
	CompactAfter int
}

// Engine is the in-process backend of Store: it runs cache servers and a
// broker with a WAL-backed persistent store inside the calling process and
// executes the API against the broker directly, with no client-side network
// hop. Use it for embedding DynaSoRe in another program and for tests; its
// broker also listens on Addr, so network Clients can connect to it.
type Engine struct {
	servers []*cluster.Server
	broker  *cluster.Broker
	tempDir string // owned temp WAL dir, removed on Close; empty otherwise
}

var _ Store = (*Engine)(nil)

// Open starts an in-process cluster.
func Open(cfg EngineConfig) (*Engine, error) {
	n := cfg.CacheServers
	if n <= 0 {
		n = 3
	}
	if cfg.Preferred < -1 || cfg.Preferred >= n {
		return nil, fmt.Errorf("dynasore: preferred server %d out of range (have %d)", cfg.Preferred, n)
	}
	e := &Engine{}
	dataDir := cfg.DataDir
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "dynasore-engine")
		if err != nil {
			return nil, fmt.Errorf("dynasore: temp data dir: %w", err)
		}
		e.tempDir = dir
		dataDir = dir
	}
	var addrs []string
	for i := 0; i < n; i++ {
		s, err := cluster.NewServer("127.0.0.1:0")
		if err != nil {
			e.Close()
			return nil, err
		}
		e.servers = append(e.servers, s)
		addrs = append(addrs, s.Addr())
	}
	broker, err := cluster.NewBroker(cluster.BrokerConfig{
		Addr:            "127.0.0.1:0",
		ServerAddrs:     addrs,
		DataDir:         dataDir,
		ViewCap:         cfg.ViewCap,
		Placement:       cfg.Placement.toCluster(),
		Preferred:       cfg.Preferred,
		MaxReplicas:     cfg.MaxReplicas,
		PolicyEvery:     cfg.PolicyEvery,
		Policy:          cfg.Policy.toCluster(),
		ServerCapacity:  cfg.ServerCapacity,
		CheckpointEvery: cfg.CheckpointEvery,
		CompactAfter:    cfg.CompactAfter,
	})
	if err != nil {
		e.Close()
		return nil, err
	}
	e.broker = broker
	return e, nil
}

// Addr returns the embedded broker's address, so network Clients (local or
// remote) can Dial the same cluster.
func (e *Engine) Addr() string { return e.broker.Addr() }

// Read fetches the views of every user in targets, in order.
func (e *Engine) Read(ctx context.Context, targets []uint32) ([]View, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	views, err := e.broker.Read(targets)
	if err != nil {
		return nil, err
	}
	return fromClusterViews(views), nil
}

// Write appends payload to user's view and returns its sequence number.
func (e *Engine) Write(ctx context.Context, user uint32, payload []byte) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.broker.Write(user, payload)
}

// Stats returns a snapshot of the embedded broker's counters, plus the
// cache servers' direct-read activity (views they served straight to
// direct-reading clients, and direct attempts they fenced as stale).
func (e *Engine) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	st := fromClusterStats(e.broker.Stats())
	for _, s := range e.servers {
		ss := s.Stats()
		st.DirectReads += ss.DirectReads
		st.DirectStale += ss.DirectStale
	}
	return st, nil
}

// ReplicaCount returns the current replication degree of user's view.
func (e *Engine) ReplicaCount(user uint32) int { return e.broker.ReplicaCount(user) }

// HomeOf reports the cache-server slot user's view homes on under the
// current membership epoch (rendezvous hashing over the active servers).
func (e *Engine) HomeOf(user uint32) int { return e.broker.HomeOf(user) }

// Epoch returns the engine's current membership epoch.
func (e *Engine) Epoch() uint64 { return e.broker.Epoch() }

// Membership returns the engine's current cache-server set.
func (e *Engine) Membership(ctx context.Context) (Membership, error) {
	if err := ctx.Err(); err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(e.broker.Membership()), nil
}

// AddServer admits a cache server started elsewhere (e.g. with
// ListenCacheServer) into the engine's cluster and returns the new
// membership.
func (e *Engine) AddServer(ctx context.Context, addr string, pos Position, capacity int) (Membership, error) {
	if err := ctx.Err(); err != nil {
		return Membership{}, err
	}
	if _, err := e.broker.AddServer(membership.ServerInfo{
		Addr: addr, Zone: pos.Zone, Rack: pos.Rack, Capacity: capacity,
	}); err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(e.broker.Membership()), nil
}

// DrainServer starts decommissioning the cache server at addr.
func (e *Engine) DrainServer(ctx context.Context, addr string) (Membership, error) {
	if err := ctx.Err(); err != nil {
		return Membership{}, err
	}
	if _, err := e.broker.DrainServer(addr); err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(e.broker.Membership()), nil
}

// RemoveServer retires the cache server at addr from the cluster.
func (e *Engine) RemoveServer(ctx context.Context, addr string) (Membership, error) {
	if err := ctx.Err(); err != nil {
		return Membership{}, err
	}
	if _, err := e.broker.RemoveServer(addr); err != nil {
		return Membership{}, err
	}
	return fromClusterMembership(e.broker.Membership()), nil
}

var _ Admin = (*Engine)(nil)

// NumCacheServers returns how many cache nodes the engine runs.
func (e *Engine) NumCacheServers() int { return len(e.servers) }

// CrashCacheServer stops cache server i without shutting down the cluster,
// simulating a node failure: reads fall back to replicas and the persistent
// store (§3.3).
func (e *Engine) CrashCacheServer(i int) error {
	if i < 0 || i >= len(e.servers) {
		return fmt.Errorf("dynasore: cache server %d out of range", i)
	}
	return e.servers[i].Close()
}

// Close stops the broker, the cache servers, and the persistent store.
func (e *Engine) Close() error {
	var err error
	if e.broker != nil {
		err = e.broker.Close()
		e.broker = nil
	}
	for _, s := range e.servers {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	e.servers = nil
	if e.tempDir != "" {
		if cerr := os.RemoveAll(e.tempDir); err == nil && !errors.Is(cerr, os.ErrNotExist) {
			err = cerr
		}
		e.tempDir = ""
	}
	return err
}
