// Package dynasore is the public client API of the DynaSoRe middleware: the
// paper's tiny Read(u, L) / Write(u) interface (§3.1) behind one Store
// facade with pluggable backends.
//
// Two backends implement Store:
//
//   - Engine (see Open) runs a whole cluster — cache servers, a broker, and
//     its WAL-backed persistent store — inside the calling process, for
//     embedding and tests.
//   - Client (see Dial) talks to a remote broker over wire protocol v2: a
//     versioned handshake plus per-request IDs let many requests multiplex
//     concurrently over each pooled connection, instead of the one
//     serialized request per connection of the legacy v1 client.
//
// Server-side nodes for standalone deployments are started with
// ListenCacheServer and ListenBroker; both serve v1 and v2 clients.
package dynasore

import (
	"context"

	"dynasore/internal/cluster"
)

// View is a producer-pivoted view: one user's latest events, oldest first,
// plus a version (the WAL sequence number of the newest event).
type View struct {
	Version uint64
	Events  [][]byte
}

// Stats summarizes broker activity.
type Stats struct {
	// Reads and Writes count completed API calls.
	Reads  int64
	Writes int64
	// Replicated and Evicted count hot-view replica creations and
	// cold-replica evictions by the broker's controller (§3.2).
	Replicated int64
	Evicted    int64
	// Misses counts cache misses refilled from the persistent store (§3.3).
	Misses int64
}

// Store is the DynaSoRe API. Both backends are safe for concurrent use.
type Store interface {
	// Read fetches the views of every user in targets, in order: the
	// paper's Read(u, L).
	Read(ctx context.Context, targets []uint32) ([]View, error)
	// Write appends payload to user's view and returns its sequence
	// number: the paper's Write(u).
	Write(ctx context.Context, user uint32, payload []byte) (uint64, error)
	// Stats returns a snapshot of the serving broker's counters.
	Stats(ctx context.Context) (Stats, error)
	// Close releases the backend's resources.
	Close() error
}

func fromClusterView(v cluster.View) View {
	return View{Version: v.Version, Events: v.Events}
}

func fromClusterViews(vs []cluster.View) []View {
	out := make([]View, len(vs))
	for i, v := range vs {
		out[i] = fromClusterView(v)
	}
	return out
}

func fromClusterStats(st cluster.BrokerStats) Stats {
	return Stats{
		Reads:      st.Reads,
		Writes:     st.Writes,
		Replicated: st.Replicated,
		Evicted:    st.Evicted,
		Misses:     st.Misses,
	}
}
