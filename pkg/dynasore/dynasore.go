// Package dynasore is the public client API of the DynaSoRe middleware: the
// paper's tiny Read(u, L) / Write(u) interface (§3.1) behind one Store
// facade with pluggable backends.
//
// Three backends implement Store:
//
//   - Engine (see Open) runs a whole cluster — cache servers, a broker, and
//     its WAL-backed persistent store — inside the calling process, for
//     embedding and tests.
//   - Client (see Dial) talks to a remote broker over wire protocol v2: a
//     versioned handshake plus per-request IDs let many requests multiplex
//     concurrently over each pooled connection, instead of the one
//     serialized request per connection of the legacy v1 client.
//   - ClusterClient (see DialCluster) talks to every broker of a
//     multi-broker cluster: reads round-robin across brokers, each user's
//     writes stick to one broker, and requests fail over when a broker
//     dies.
//
// Server-side nodes for standalone deployments are started with
// ListenCacheServer and ListenBroker; both serve v1 and v2 clients. A
// multi-broker cluster — the paper's one-broker-per-front-end-cluster
// deployment — is a set of ListenBroker nodes given the same Peers list:
// they share the cache servers and placement state, elect the
// smallest-position broker to run the placement policy over the whole
// cluster's traffic, and replicate every durable write between their
// write-ahead logs (or share one in-process store, see OpenStore).
package dynasore

import (
	"context"

	"dynasore/internal/cluster"
	"dynasore/internal/membership"
	"dynasore/internal/viewpolicy"
)

// View is a producer-pivoted view: one user's latest events, oldest first,
// plus a version (the WAL sequence number of the newest event).
type View struct {
	Version uint64
	Events  [][]byte
}

// Stats summarizes broker activity.
type Stats struct {
	// Reads and Writes count completed API calls.
	Reads  int64
	Writes int64
	// Replicated, Evicted, and Migrated count the placement policy's
	// replica creations, removals, and migrations (§3.2, Algorithms 2–3).
	Replicated int64
	Evicted    int64
	Migrated   int64
	// Misses counts cache misses refilled from the persistent store (§3.3).
	Misses int64
	// Checkpoints and CompactedSegments count the durability subsystem's
	// activity: snapshots of the persistent store taken, and WAL segments
	// deleted because a snapshot fully covered them (zero unless the
	// broker runs with CheckpointEvery set).
	Checkpoints       int64
	CompactedSegments int64
	// CatchupRecords counts WAL records the broker recovered from its
	// peers via the per-origin catch-up protocol after missing them —
	// e.g. while it was down.
	CatchupRecords int64
	// LeaseGrants counts direct-read leases the broker issued; DirectReads
	// and DirectStale count the fast path's outcomes — views served
	// client → cache server without the broker, and direct attempts that
	// fenced or failed back to the broker path. For Engine the direct
	// counters come from its cache servers; for ClusterClient they are the
	// client's own.
	LeaseGrants int64
	DirectReads int64
	DirectStale int64
	// Epoch is the broker's current membership epoch: it advances every
	// time a cache server is added, drained, or removed.
	Epoch uint64
}

// Store is the DynaSoRe API. Both backends are safe for concurrent use.
type Store interface {
	// Read fetches the views of every user in targets, in order: the
	// paper's Read(u, L).
	Read(ctx context.Context, targets []uint32) ([]View, error)
	// Write appends payload to user's view and returns its sequence
	// number: the paper's Write(u).
	Write(ctx context.Context, user uint32, payload []byte) (uint64, error)
	// Stats returns a snapshot of the serving broker's counters.
	Stats(ctx context.Context) (Stats, error)
	// Close releases the backend's resources.
	Close() error
}

func fromClusterView(v cluster.View) View {
	return View{Version: v.Version, Events: v.Events}
}

func fromClusterViews(vs []cluster.View) []View {
	out := make([]View, len(vs))
	for i, v := range vs {
		out[i] = fromClusterView(v)
	}
	return out
}

func fromClusterStats(st cluster.BrokerStats) Stats {
	return Stats{
		Reads:             st.Reads,
		Writes:            st.Writes,
		Replicated:        st.Replicated,
		Evicted:           st.Evicted,
		Migrated:          st.Migrated,
		Misses:            st.Misses,
		Checkpoints:       st.Checkpoints,
		CompactedSegments: st.CompactedSegments,
		CatchupRecords:    st.CatchupRecords,
		LeaseGrants:       st.LeaseGrants,
		Epoch:             st.Epoch,
	}
}

// ServerState is the lifecycle state of one cache-server slot of the
// cluster membership.
type ServerState uint8

// Slot lifecycle: active servers hold replicas and receive new homes; a
// draining server stays readable while its replicas migrate out; a dead
// slot is the tombstone of a removed server (indices stay stable).
const (
	ServerActive ServerState = iota + 1
	ServerDraining
	ServerDead
)

// String returns the operator-facing state name.
func (s ServerState) String() string {
	return membership.State(s).String()
}

// ServerEntry describes one cache-server slot of the cluster membership:
// its address, datacenter position, placement capacity, lifecycle state,
// and how many view replicas the answering broker currently accounts to
// it (the number an operator watches reach zero during a drain).
type ServerEntry struct {
	Addr     string
	Pos      Position
	Capacity int
	State    ServerState
	Replicas int64
}

// Membership is an epoch-versioned snapshot of the cluster's cache-server
// set — the elastic-membership registry every broker of the cluster
// converges on.
type Membership struct {
	Epoch   uint64
	Servers []ServerEntry
}

// NumActive counts the servers currently accepting new homes and
// replicas.
func (m Membership) NumActive() int {
	n := 0
	for _, s := range m.Servers {
		if s.State == ServerActive {
			n++
		}
	}
	return n
}

func fromClusterMembership(info cluster.MembershipInfo) Membership {
	out := Membership{Epoch: info.View.Epoch, Servers: make([]ServerEntry, len(info.View.Servers))}
	for i, s := range info.View.Servers {
		out.Servers[i] = ServerEntry{
			Addr:     s.Addr,
			Pos:      Position{Zone: s.Zone, Rack: s.Rack},
			Capacity: s.Capacity,
			State:    ServerState(s.State),
		}
		if i < len(info.Loads) {
			out.Servers[i].Replicas = info.Loads[i]
		}
	}
	return out
}

// Admin is the elastic-membership control surface: inspect the
// epoch-versioned cache-server registry and grow, drain, or shrink the
// cluster while it serves traffic. All three Store backends implement it;
// network backends may point at any broker — mutations are forwarded to
// the leader transparently. The safe decommissioning sequence is
// DrainServer, wait for the server's Replicas count to reach zero, then
// RemoveServer.
type Admin interface {
	// Membership returns the current epoch-versioned cache-server set.
	Membership(ctx context.Context) (Membership, error)
	// AddServer admits the cache server at addr, positioned in the
	// datacenter tree, with the given placement capacity (0 = broker
	// default). Existing views re-home only in their fair rendezvous
	// share.
	AddServer(ctx context.Context, addr string, pos Position, capacity int) (Membership, error)
	// DrainServer starts decommissioning addr: still readable, no new
	// placements, replicas migrated out by the leader's maintenance pass.
	DrainServer(ctx context.Context, addr string) (Membership, error)
	// RemoveServer retires addr's slot for good.
	RemoveServer(ctx context.Context, addr string) (Membership, error)
}

// Position places a node in the datacenter tree: a zone (intermediate
// switch) and a rack within that zone. Nodes sharing a position hang off
// the same rack switch.
type Position struct {
	Zone int
	Rack int
}

// Placement positions a broker and its cache servers in the datacenter
// tree; the placement policy scores replica locations by the resulting
// network distances.
type Placement struct {
	Broker Position
	// Servers[i] is the position of the i-th cache server.
	Servers []Position
}

// PolicyConfig tunes the shared placement policy (§3, Algorithms 2–3) that
// drives replica creation, migration, and eviction on the broker. Zero
// fields assume live-cluster defaults: an 8×1s statistics window, no grace
// period, and an admission profit floor of 1000 traffic-units/hour (a
// handful of reads inside the window replicates a view).
type PolicyConfig struct {
	// Slots and SlotSeconds configure the rotating access counters.
	Slots       int
	SlotSeconds int64
	// GraceSeconds protects fresh replicas from eviction and migration
	// (negative: none — the live default).
	GraceSeconds int64
	// DecisionSeconds is the minimum observation span before a replica may
	// be removed or migrated.
	DecisionSeconds int64
	// PaybackHours is how quickly a new replica's gain must amortize its
	// transfer cost.
	PaybackHours float64
	// AdmissionMargin and AdmissionEpsilon are the relative and absolute
	// profit bars for creating a replica.
	AdmissionMargin  float64
	AdmissionEpsilon float64
	// MinReplicas is the durability floor: views with at most this many
	// copies are never evicted.
	MinReplicas int
}

func (p *Placement) toCluster() *cluster.Placement {
	if p == nil {
		return nil
	}
	out := &cluster.Placement{Broker: cluster.Position(p.Broker)}
	for _, pos := range p.Servers {
		out.Servers = append(out.Servers, cluster.Position(pos))
	}
	return out
}

func (p PolicyConfig) toCluster() viewpolicy.Config {
	return viewpolicy.Config{
		Slots:            p.Slots,
		SlotSeconds:      p.SlotSeconds,
		GraceSeconds:     p.GraceSeconds,
		DecisionSeconds:  p.DecisionSeconds,
		PaybackHours:     p.PaybackHours,
		AdmissionMargin:  p.AdmissionMargin,
		AdmissionEpsilon: p.AdmissionEpsilon,
		MinReplicas:      p.MinReplicas,
	}
}
