module dynasore

go 1.22
