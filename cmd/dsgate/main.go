// Command dsgate is the deployable HTTP edge of a dynasore cluster: it
// fronts the brokers named by -brokers (or a self-hosted in-process
// cluster with -selfhost) and serves the feed and admin API as JSON
// REST behind the configured middleware chain, plus /metrics, /healthz,
// and /readyz. Configuration layers flags over DSGATE_* environment
// variables over an optional JSON file over built-in defaults; see
// internal/gwconfig.
//
// A minimal secure gateway over a running cluster:
//
//	dsgate -brokers 127.0.0.1:7001,127.0.0.1:7002 -tokens s3cret
//
// A zero-setup demo (cluster included, auth still on):
//
//	dsgate -selfhost -tokens demo
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynasore/internal/gateway"
	"dynasore/internal/gwconfig"
	"dynasore/pkg/dynasore"
)

func main() {
	if err := run(os.Args[1:], os.Getenv, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dsgate:", err)
		os.Exit(1)
	}
}

// run is the whole program behind main, parameterized for tests.
func run(args []string, getenv func(string) string, errOut *os.File) error {
	cfg, err := gwconfig.Load(args, getenv, errOut)
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(cfg.LogLevel)); err != nil {
		return fmt.Errorf("bad log level %q: %w", cfg.LogLevel, err)
	}
	log := slog.New(slog.NewTextHandler(errOut, &slog.HandlerOptions{Level: level}))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store, err := openStore(ctx, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()

	gw, err := gateway.New(cfg, store, log)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gw, ReadHeaderTimeout: 10 * time.Second}
	log.Info("dsgate listening",
		"addr", ln.Addr().String(),
		"middlewares", cfg.Middlewares,
		"selfhost", cfg.Selfhost,
		"brokers", cfg.Brokers)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("dsgate shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// openStore builds the gateway's backend: a cluster client over the
// configured brokers, or a self-hosted in-process cluster.
func openStore(ctx context.Context, cfg gwconfig.Config) (dynasore.Store, error) {
	if cfg.Selfhost {
		return dynasore.Open(dynasore.EngineConfig{})
	}
	var opts []dynasore.DialOption
	if cfg.DirectReads {
		opts = append(opts, dynasore.WithDirectReads(0))
	}
	dialCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	return dynasore.DialCluster(dialCtx, cfg.Brokers, opts...)
}
