// Command dynalint runs the repo's invariant analyzers (internal/lint)
// over Go packages. It works two ways:
//
// Standalone, over package patterns (exit 1 when there are findings):
//
//	go run ./cmd/dynalint ./...
//
// As a vet tool, speaking the go command's unitchecker protocol (the
// go tool invokes it once per package with a JSON config file):
//
//	go build -o /tmp/dynalint ./cmd/dynalint
//	go vet -vettool=/tmp/dynalint ./...
//
// The analyzers and the invariants they enforce are catalogued in
// docs/INVARIANTS.md. Suppressions use `//dynalint:allow <analyzer>
// <reason>` directives at the offending declaration or statement.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"dynasore/internal/lint"
)

func main() {
	// `go vet -vettool` probes the tool's identity before using it.
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return
	}
	// The go command also asks which analyzer flags the tool accepts
	// (JSON list); this suite exposes none beyond the protocol itself.
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetMode(os.Args[1]))
	}
	os.Exit(standalone())
}

// standalone loads the given package patterns (default ./...) and runs
// the whole suite, printing findings like a compiler would.
func standalone() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynalint:", err)
		return 2
	}
	diags, fset, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynalint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dynalint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the subset of the go command's unitchecker config this
// tool needs: the package's own files plus the maps resolving its
// imports to export data.
type vetConfig struct {
	ID                        string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes one package as directed by the go command's config
// file, exit code 2 signalling findings (vet's convention).
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynalint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dynalint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command stores per-package analysis facts via VetxOutput.
	// This suite is factless, but the file must exist for the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("dynalint: no facts"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dynalint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Resolve import paths the way the compiler would: first through
	// ImportMap (import path as written → canonical), then to the
	// export data file.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for as, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[as] = file
		}
	}
	fset := token.NewFileSet()
	pkg, err := lint.CheckFiles(fset, cfg.ImportPath, goOnly(cfg.GoFiles), exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "dynalint:", err)
		return 1
	}
	diags, _, err := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynalint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// goOnly filters a config's file list down to .go sources (cgo-less
// packages may still list assembly files under NonGoFiles, but be
// defensive about what lands in GoFiles).
func goOnly(files []string) []string {
	var out []string
	for _, f := range files {
		if strings.HasSuffix(f, ".go") {
			out = append(out, f)
		}
	}
	return out
}

// printVersion answers `dynalint -V=full`: the go command hashes this
// line into its action cache key, so it must change when the tool
// does. Hash the executable itself — the strongest cheap fingerprint.
func printVersion() {
	name := "dynalint"
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h := sha256.Sum256(data)
			sum = fmt.Sprintf("%x", h[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, sum)
}
