// Command dsctl is a small client for the live DynaSoRe cluster: it writes
// events, reads feeds, and dumps broker statistics, speaking the
// multiplexed wire protocol v2 via pkg/dynasore.
//
// Usage:
//
//	dsctl -broker 127.0.0.1:7000 write <user> <text...>
//	dsctl -broker 127.0.0.1:7000 read <user> [<user>...]
//	dsctl -broker 127.0.0.1:7000 stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dynasore/pkg/dynasore"
)

func main() {
	broker := flag.String("broker", "127.0.0.1:7000", "broker address")
	timeout := flag.Duration("timeout", 10*time.Second, "per-command timeout")
	flag.Parse()
	if err := run(*broker, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dsctl:", err)
		os.Exit(1)
	}
}

func run(broker string, timeout time.Duration, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dsctl [flags] write|read|stats ...")
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c, err := dynasore.Dial(ctx, broker)
	if err != nil {
		return err
	}
	defer c.Close()

	switch args[0] {
	case "write":
		if len(args) < 3 {
			return fmt.Errorf("usage: dsctl write <user> <text...>")
		}
		user, err := parseUser(args[1])
		if err != nil {
			return err
		}
		seq, err := c.Write(ctx, user, []byte(strings.Join(args[2:], " ")))
		if err != nil {
			return err
		}
		fmt.Printf("written seq=%d\n", seq)
		return nil
	case "read":
		if len(args) < 2 {
			return fmt.Errorf("usage: dsctl read <user> [<user>...]")
		}
		var targets []uint32
		for _, a := range args[1:] {
			user, err := parseUser(a)
			if err != nil {
				return err
			}
			targets = append(targets, user)
		}
		views, err := c.Read(ctx, targets)
		if err != nil {
			return err
		}
		for i, v := range views {
			fmt.Printf("user %d (version %d, %d events):\n", targets[i], v.Version, len(v.Events))
			for _, e := range v.Events {
				fmt.Printf("  %s\n", e)
			}
		}
		return nil
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("reads=%d writes=%d replicated=%d evicted=%d migrated=%d misses=%d checkpoints=%d compacted=%d catchup=%d\n",
			st.Reads, st.Writes, st.Replicated, st.Evicted, st.Migrated, st.Misses,
			st.Checkpoints, st.CompactedSegments, st.CatchupRecords)
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func parseUser(s string) (uint32, error) {
	u, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad user id %q: %w", s, err)
	}
	return uint32(u), nil
}
