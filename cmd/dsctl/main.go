// Command dsctl is a small client for the live DynaSoRe cluster: it writes
// events, reads feeds, dumps broker statistics, and administers the
// elastic cache-server membership, speaking the multiplexed wire protocol
// v2 via pkg/dynasore.
//
// Usage:
//
//	dsctl -broker 127.0.0.1:7000 write <user> <text...>
//	dsctl -broker 127.0.0.1:7000 read <user> [<user>...]
//	dsctl -broker 127.0.0.1:7000 stats
//	dsctl -broker 127.0.0.1:7000 server list
//	dsctl -broker 127.0.0.1:7000 server add <addr> [zone:rack] [capacity]
//	dsctl -broker 127.0.0.1:7000 server drain <addr>
//	dsctl -broker 127.0.0.1:7000 server remove <addr>
//
// Every command also works against a dsgate HTTP gateway instead of a
// broker: `dsctl -gateway http://127.0.0.1:8080 -token s3cret <cmd>`.
//
// Membership commands may target any broker — followers forward mutations
// to the leader. The zero-miss decommissioning sequence is `server
// drain`, wait for `server list` to show 0 replicas on the server, then
// `server remove`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dynasore/internal/gateway"
	"dynasore/pkg/dynasore"
)

func main() {
	broker := flag.String("broker", "127.0.0.1:7000", "broker address")
	gatewayURL := flag.String("gateway", "", "dsgate HTTP gateway base URL (overrides -broker)")
	token := flag.String("token", "", "bearer token for -gateway")
	timeout := flag.Duration("timeout", 10*time.Second, "per-command timeout")
	flag.Parse()
	if err := run(*broker, *gatewayURL, *token, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dsctl:", err)
		os.Exit(1)
	}
}

// storeAdmin is what every dsctl command needs from a backend: the feed
// API plus the elastic-membership surface. Both the wire-protocol client
// and the HTTP gateway client implement it.
type storeAdmin interface {
	dynasore.Store
	dynasore.Admin
}

func run(broker, gatewayURL, token string, timeout time.Duration, args []string) (err error) {
	if len(args) == 0 {
		return fmt.Errorf("usage: dsctl [flags] write|read|stats|server ...")
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var c storeAdmin
	if gatewayURL != "" {
		c = gateway.NewClient(gatewayURL, token)
	} else {
		c, err = dynasore.Dial(ctx, broker)
		if err != nil {
			return err
		}
	}
	// A close error can be the first sign a command's final frame never
	// made it out; surface it unless a command error already won.
	defer func() {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	switch args[0] {
	case "write":
		if len(args) < 3 {
			return fmt.Errorf("usage: dsctl write <user> <text...>")
		}
		user, err := parseUser(args[1])
		if err != nil {
			return err
		}
		seq, err := c.Write(ctx, user, []byte(strings.Join(args[2:], " ")))
		if err != nil {
			return err
		}
		fmt.Printf("written seq=%d\n", seq)
		return nil
	case "read":
		if len(args) < 2 {
			return fmt.Errorf("usage: dsctl read <user> [<user>...]")
		}
		var targets []uint32
		for _, a := range args[1:] {
			user, err := parseUser(a)
			if err != nil {
				return err
			}
			targets = append(targets, user)
		}
		views, err := c.Read(ctx, targets)
		if err != nil {
			return err
		}
		for i, v := range views {
			fmt.Printf("user %d (version %d, %d events):\n", targets[i], v.Version, len(v.Events))
			for _, e := range v.Events {
				fmt.Printf("  %s\n", e)
			}
		}
		return nil
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("epoch=%d reads=%d writes=%d replicated=%d evicted=%d migrated=%d misses=%d checkpoints=%d compacted=%d catchup=%d leases=%d direct=%d directstale=%d\n",
			st.Epoch, st.Reads, st.Writes, st.Replicated, st.Evicted, st.Migrated, st.Misses,
			st.Checkpoints, st.CompactedSegments, st.CatchupRecords,
			st.LeaseGrants, st.DirectReads, st.DirectStale)
		return nil
	case "server":
		if len(args) < 2 {
			return fmt.Errorf("usage: dsctl server list|add|drain|remove ...")
		}
		return runServer(ctx, c, args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// runServer executes the elastic-membership subcommands.
func runServer(ctx context.Context, c storeAdmin, args []string) error {
	switch args[0] {
	case "list":
		m, err := c.Membership(ctx)
		if err != nil {
			return err
		}
		printMembership(m)
		return nil
	case "add":
		if len(args) < 2 {
			return fmt.Errorf("usage: dsctl server add <addr> [zone:rack] [capacity]")
		}
		var pos dynasore.Position
		capacity := 0
		if len(args) >= 3 {
			if _, err := fmt.Sscanf(args[2], "%d:%d", &pos.Zone, &pos.Rack); err != nil {
				return fmt.Errorf("bad position %q (want zone:rack): %w", args[2], err)
			}
		}
		if len(args) >= 4 {
			n, err := strconv.Atoi(args[3])
			if err != nil || n < 0 {
				return fmt.Errorf("bad capacity %q", args[3])
			}
			capacity = n
		}
		m, err := c.AddServer(ctx, args[1], pos, capacity)
		if err != nil {
			return err
		}
		fmt.Printf("added %s at epoch %d\n", args[1], m.Epoch)
		printMembership(m)
		return nil
	case "drain":
		if len(args) != 2 {
			return fmt.Errorf("usage: dsctl server drain <addr>")
		}
		m, err := c.DrainServer(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("draining %s at epoch %d (remove it once `server list` shows 0 replicas)\n", args[1], m.Epoch)
		printMembership(m)
		return nil
	case "remove":
		if len(args) != 2 {
			return fmt.Errorf("usage: dsctl server remove <addr>")
		}
		m, err := c.RemoveServer(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("removed %s at epoch %d\n", args[1], m.Epoch)
		printMembership(m)
		return nil
	default:
		return fmt.Errorf("unknown server command %q", args[0])
	}
}

func printMembership(m dynasore.Membership) {
	fmt.Printf("epoch %d, %d slots (%d active)\n", m.Epoch, len(m.Servers), m.NumActive())
	for i, s := range m.Servers {
		// 0 means the broker's default capacity, which may itself be a
		// bound — only the broker knows, so don't claim "unbounded".
		capacity := "default"
		if s.Capacity > 0 {
			capacity = strconv.Itoa(s.Capacity)
		}
		fmt.Printf("  [%d] %-21s %-8s zone %d rack %d  capacity %-9s replicas %d\n",
			i, s.Addr, s.State, s.Pos.Zone, s.Pos.Rack, capacity, s.Replicas)
	}
}

func parseUser(s string) (uint32, error) {
	u, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad user id %q: %w", s, err)
	}
	return uint32(u), nil
}
