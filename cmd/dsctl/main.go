// Command dsctl is a small client for the live DynaSoRe cluster: it writes
// events, reads feeds, dumps broker statistics, and administers the
// elastic cache-server membership, speaking the multiplexed wire protocol
// v2 via pkg/dynasore.
//
// Usage:
//
//	dsctl -broker 127.0.0.1:7000 write <user> <text...>
//	dsctl -broker 127.0.0.1:7000 read <user> [<user>...]
//	dsctl -broker 127.0.0.1:7000 stats
//	dsctl -brokers 127.0.0.1:7000,127.0.0.1:7010 top
//	dsctl -broker 127.0.0.1:7000 [-ops http://127.0.0.1:9100] trace <user>
//	dsctl -broker 127.0.0.1:7000 server list
//	dsctl -broker 127.0.0.1:7000 server add <addr> [zone:rack] [capacity]
//	dsctl -broker 127.0.0.1:7000 server drain <addr>
//	dsctl -broker 127.0.0.1:7000 server remove <addr>
//
// `top` prints a per-broker table of op counters (one row per broker of
// -brokers, falling back to -broker alone). `trace <user>` forces trace
// sampling on, reads the user's feed once, and prints the client span's
// stage breakdown; with -ops it also fetches the broker's /debug/traces
// and prints the broker-side spans of the same trace ID.
//
// Every command except top and trace also works against a dsgate HTTP
// gateway instead of a broker:
// `dsctl -gateway http://127.0.0.1:8080 -token s3cret <cmd>`.
//
// Membership commands may target any broker — followers forward mutations
// to the leader. The zero-miss decommissioning sequence is `server
// drain`, wait for `server list` to show 0 replicas on the server, then
// `server remove`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"dynasore/internal/gateway"
	"dynasore/internal/telemetry"
	"dynasore/pkg/dynasore"
)

func main() {
	broker := flag.String("broker", "127.0.0.1:7000", "broker address")
	brokers := flag.String("brokers", "", "comma-separated broker addresses for top (default: -broker alone)")
	gatewayURL := flag.String("gateway", "", "dsgate HTTP gateway base URL (overrides -broker)")
	token := flag.String("token", "", "bearer token for -gateway")
	opsURL := flag.String("ops", "", "a broker's ops listener base URL; trace fetches its /debug/traces")
	timeout := flag.Duration("timeout", 10*time.Second, "per-command timeout")
	flag.Parse()
	if err := run(cliConfig{
		broker: *broker, brokers: *brokers, gatewayURL: *gatewayURL,
		token: *token, opsURL: *opsURL, timeout: *timeout,
	}, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dsctl:", err)
		os.Exit(1)
	}
}

// cliConfig carries the parsed global flags into run.
type cliConfig struct {
	broker, brokers, gatewayURL, token, opsURL string
	timeout                                    time.Duration
}

// storeAdmin is what every dsctl command needs from a backend: the feed
// API plus the elastic-membership surface. Both the wire-protocol client
// and the HTTP gateway client implement it.
type storeAdmin interface {
	dynasore.Store
	dynasore.Admin
}

func run(cfg cliConfig, args []string) (err error) {
	if len(args) == 0 {
		return fmt.Errorf("usage: dsctl [flags] write|read|stats|top|trace|server ...")
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	switch args[0] {
	case "top":
		// top and trace speak the wire protocol's new telemetry surfaces;
		// they have no gateway equivalent.
		return runTop(ctx, cfg)
	case "trace":
		return runTrace(ctx, cfg, args[1:])
	}
	var c storeAdmin
	if cfg.gatewayURL != "" {
		c = gateway.NewClient(cfg.gatewayURL, cfg.token)
	} else {
		c, err = dynasore.Dial(ctx, cfg.broker)
		if err != nil {
			return err
		}
	}
	// A close error can be the first sign a command's final frame never
	// made it out; surface it unless a command error already won.
	defer func() {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	switch args[0] {
	case "write":
		if len(args) < 3 {
			return fmt.Errorf("usage: dsctl write <user> <text...>")
		}
		user, err := parseUser(args[1])
		if err != nil {
			return err
		}
		seq, err := c.Write(ctx, user, []byte(strings.Join(args[2:], " ")))
		if err != nil {
			return err
		}
		fmt.Printf("written seq=%d\n", seq)
		return nil
	case "read":
		if len(args) < 2 {
			return fmt.Errorf("usage: dsctl read <user> [<user>...]")
		}
		var targets []uint32
		for _, a := range args[1:] {
			user, err := parseUser(a)
			if err != nil {
				return err
			}
			targets = append(targets, user)
		}
		views, err := c.Read(ctx, targets)
		if err != nil {
			return err
		}
		for i, v := range views {
			fmt.Printf("user %d (version %d, %d events):\n", targets[i], v.Version, len(v.Events))
			for _, e := range v.Events {
				fmt.Printf("  %s\n", e)
			}
		}
		return nil
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("epoch=%d reads=%d writes=%d replicated=%d evicted=%d migrated=%d misses=%d checkpoints=%d compacted=%d catchup=%d leases=%d direct=%d directstale=%d\n",
			st.Epoch, st.Reads, st.Writes, st.Replicated, st.Evicted, st.Migrated, st.Misses,
			st.Checkpoints, st.CompactedSegments, st.CatchupRecords,
			st.LeaseGrants, st.DirectReads, st.DirectStale)
		return nil
	case "server":
		if len(args) < 2 {
			return fmt.Errorf("usage: dsctl server list|add|drain|remove ...")
		}
		return runServer(ctx, c, args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// runTop prints one row of op counters per broker — the per-broker
// attribution StatsPerBroker exists for, rather than the cluster sum.
func runTop(ctx context.Context, cfg cliConfig) error {
	if cfg.gatewayURL != "" {
		return fmt.Errorf("top needs broker addresses (-broker/-brokers), not a gateway")
	}
	addrs := []string{cfg.broker}
	if cfg.brokers != "" {
		addrs = strings.Split(cfg.brokers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
	}
	cc, err := dynasore.DialCluster(ctx, addrs)
	if err != nil {
		return err
	}
	defer cc.Close()
	per, err := cc.StatsPerBroker(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-21s %8s %8s %8s %8s %8s %8s %6s\n",
		"BROKER", "READS", "WRITES", "REPL", "MIGR", "MISSES", "LEASES", "EPOCH")
	for _, p := range per {
		st := p.Stats
		fmt.Printf("%-21s %8d %8d %8d %8d %8d %8d %6d\n",
			p.Addr, st.Reads, st.Writes, st.Replicated, st.Migrated, st.Misses, st.LeaseGrants, st.Epoch)
	}
	if len(per) < len(addrs) {
		fmt.Printf("(%d of %d brokers unreachable)\n", len(addrs)-len(per), len(addrs))
	}
	return nil
}

// runTrace forces trace sampling on, reads the user's feed once, and
// prints the client span's stage breakdown; with -ops it also fetches
// the broker's /debug/traces and prints that node's spans of the same
// trace.
func runTrace(ctx context.Context, cfg cliConfig, args []string) error {
	if cfg.gatewayURL != "" {
		return fmt.Errorf("trace needs a broker address (-broker), not a gateway")
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: dsctl trace <user>")
	}
	user, err := parseUser(args[0])
	if err != nil {
		return err
	}
	telemetry.Default().SetSampleEvery(1)
	c, err := dynasore.Dial(ctx, cfg.broker)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Read(ctx, []uint32{user}); err != nil {
		return err
	}
	recs := telemetry.Default().Traces(4)
	if len(recs) == 0 {
		return fmt.Errorf("no client span recorded; is the broker speaking protocol v3?")
	}
	traceID := recs[0].TraceID
	for _, r := range recs {
		if r.TraceID == traceID {
			printTrace("client", r)
		}
	}
	if cfg.opsURL == "" {
		fmt.Printf("(pass -ops http://<broker-ops-addr> to fetch the broker-side spans of trace %s)\n", traceID)
		return nil
	}
	brokerRecs, err := fetchTraces(ctx, cfg.opsURL)
	if err != nil {
		return fmt.Errorf("fetch broker traces: %w", err)
	}
	matched := 0
	for _, r := range brokerRecs {
		if r.TraceID == traceID {
			printTrace("broker", r)
			matched++
		}
	}
	if matched == 0 {
		fmt.Printf("trace %s not in the broker's ring yet (it keeps the last 256 sampled spans)\n", traceID)
	}
	return nil
}

// printTrace renders one completed span with its stage breakdown.
func printTrace(node string, r telemetry.TraceRecord) {
	var stages strings.Builder
	for i, st := range r.Stages {
		if i > 0 {
			stages.WriteByte(' ')
		}
		fmt.Fprintf(&stages, "%s=%.2fms", st.Name, st.Ms)
	}
	fmt.Printf("%-6s trace=%s %-13s %8.2fms  %s\n", node, r.TraceID, r.Op, r.TotalMs, stages.String())
}

// fetchTraces pulls a node's recent sampled spans from its ops listener.
func fetchTraces(ctx context.Context, opsURL string) ([]telemetry.TraceRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(opsURL, "/")+"/debug/traces", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s answered %s", req.URL, resp.Status)
	}
	var recs []telemetry.TraceRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// runServer executes the elastic-membership subcommands.
func runServer(ctx context.Context, c storeAdmin, args []string) error {
	switch args[0] {
	case "list":
		m, err := c.Membership(ctx)
		if err != nil {
			return err
		}
		printMembership(m)
		return nil
	case "add":
		if len(args) < 2 {
			return fmt.Errorf("usage: dsctl server add <addr> [zone:rack] [capacity]")
		}
		var pos dynasore.Position
		capacity := 0
		if len(args) >= 3 {
			if _, err := fmt.Sscanf(args[2], "%d:%d", &pos.Zone, &pos.Rack); err != nil {
				return fmt.Errorf("bad position %q (want zone:rack): %w", args[2], err)
			}
		}
		if len(args) >= 4 {
			n, err := strconv.Atoi(args[3])
			if err != nil || n < 0 {
				return fmt.Errorf("bad capacity %q", args[3])
			}
			capacity = n
		}
		m, err := c.AddServer(ctx, args[1], pos, capacity)
		if err != nil {
			return err
		}
		fmt.Printf("added %s at epoch %d\n", args[1], m.Epoch)
		printMembership(m)
		return nil
	case "drain":
		if len(args) != 2 {
			return fmt.Errorf("usage: dsctl server drain <addr>")
		}
		m, err := c.DrainServer(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("draining %s at epoch %d (remove it once `server list` shows 0 replicas)\n", args[1], m.Epoch)
		printMembership(m)
		return nil
	case "remove":
		if len(args) != 2 {
			return fmt.Errorf("usage: dsctl server remove <addr>")
		}
		m, err := c.RemoveServer(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("removed %s at epoch %d\n", args[1], m.Epoch)
		printMembership(m)
		return nil
	default:
		return fmt.Errorf("unknown server command %q", args[0])
	}
}

func printMembership(m dynasore.Membership) {
	fmt.Printf("epoch %d, %d slots (%d active)\n", m.Epoch, len(m.Servers), m.NumActive())
	for i, s := range m.Servers {
		// 0 means the broker's default capacity, which may itself be a
		// bound — only the broker knows, so don't claim "unbounded".
		capacity := "default"
		if s.Capacity > 0 {
			capacity = strconv.Itoa(s.Capacity)
		}
		fmt.Printf("  [%d] %-21s %-8s zone %d rack %d  capacity %-9s replicas %d\n",
			i, s.Addr, s.State, s.Pos.Zone, s.Pos.Rack, capacity, s.Replicas)
	}
}

func parseUser(s string) (uint32, error) {
	u, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad user id %q: %w", s, err)
	}
	return uint32(u), nil
}
