// Command tracegen emits a synthetic or realistic request trace for one of
// the paper's datasets as "time user op" lines, plus the social graph as an
// edge list, so external tools can replay the same workloads.
//
// Usage:
//
//	tracegen -dataset facebook -users 2000 -days 2 -kind synthetic -out trace.txt -graph graph.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dynasore/internal/experiments"
	"dynasore/internal/trace"
)

func main() {
	var (
		dataset = flag.String("dataset", "facebook", "twitter, facebook, or livejournal")
		users   = flag.Int("users", 2000, "number of users")
		days    = flag.Int("days", 2, "trace length in days")
		kind    = flag.String("kind", "synthetic", "synthetic or realistic")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("out", "", "trace output file (default stdout)")
		graph   = flag.String("graph", "", "optional edge-list output file")
	)
	flag.Parse()
	if err := run(*dataset, *users, *days, *kind, *seed, *out, *graph); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(dataset string, users, days int, kind string, seed int64, out, graphOut string) error {
	cfg := experiments.Default()
	cfg.Users = users
	cfg.Seed = seed
	g, err := cfg.Graph(experiments.Dataset(dataset))
	if err != nil {
		return err
	}
	var log *trace.Log
	switch kind {
	case "synthetic":
		log, err = trace.Synthetic(g, trace.DefaultSynthetic(days), seed)
	case "realistic":
		rc := trace.DefaultRealistic()
		rc.Days = days
		log, err = trace.Realistic(g, rc, seed)
	default:
		return fmt.Errorf("unknown trace kind %q", kind)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, r := range log.Requests {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", r.At, r.User, r.Kind); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if graphOut != "" {
		f, err := os.Create(graphOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteEdgeList(f); err != nil {
			return err
		}
	}
	return nil
}
