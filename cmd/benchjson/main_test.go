package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `
goos: linux
goarch: amd64
pkg: dynasore/internal/wal
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAppend              	  270684	      4420 ns/op	  31.67 MB/s
BenchmarkAppendGroupCommit64 	     200	      6902.5 ns/op	  20.28 MB/s
BenchmarkViewStoreAppend-8   	  215844	      5169 ns/op	     561 B/op	       5 allocs/op
PASS
ok  	dynasore/internal/wal	3.337s
pkg: dynasore/internal/cluster
BenchmarkServerParallelGet-8 	 3798940	       315.2 ns/op	      24 B/op	       1 allocs/op
--- FAIL: BenchmarkBroken
`
	results, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkAppend" || first.Package != "dynasore/internal/wal" ||
		first.Iterations != 270684 || first.NsPerOp != 4420 {
		t.Errorf("first result = %+v", first)
	}
	if first.MBPerS == nil || *first.MBPerS != 31.67 {
		t.Errorf("MB/s not captured: %+v", first)
	}
	if results[1].NsPerOp != 6902.5 {
		t.Errorf("fractional ns/op lost: %+v", results[1])
	}
	third := results[2]
	if third.Name != "BenchmarkViewStoreAppend" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", third.Name)
	}
	if third.BytesPerOp == nil || *third.BytesPerOp != 561 ||
		third.AllocsPerOp == nil || *third.AllocsPerOp != 5 {
		t.Errorf("benchmem fields = %+v", third)
	}
	if results[3].Package != "dynasore/internal/cluster" {
		t.Errorf("pkg header not tracked: %+v", results[3])
	}
}

func TestParseEmptyInputIsEmptyArray(t *testing.T) {
	results, err := parse(strings.NewReader("nothing to see\n"))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("want empty non-nil slice, got %#v", results)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1000}]`)
	better := write("better.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":900}]`)
	slight := write("slight.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1150}]`)
	bad := write("bad.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1500}]`)
	missing := write("missing.json", `[{"name":"BenchmarkOther","iterations":100,"ns_per_op":1}]`)

	if err := runCompare(old, better, "BenchmarkClientPipelined", 20); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}
	if err := runCompare(old, slight, "BenchmarkClientPipelined", 20); err != nil {
		t.Errorf("15%% regression should pass a 20%% limit: %v", err)
	}
	if err := runCompare(old, bad, "BenchmarkClientPipelined", 20); err == nil {
		t.Error("50% regression passed a 20% limit")
	}
	if err := runCompare(old, missing, "BenchmarkClientPipelined", 20); err == nil {
		t.Error("missing benchmark in new artifact not reported")
	}
	if err := runCompare(old, bad, "", 20); err == nil {
		t.Error("missing -bench not reported")
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"ok  	dynasore/internal/wal	3.337s",
		"Benchmark missing iteration count ns/op",
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 100 5 seconds", // no ns/op pair
	} {
		if res, ok := parseLine(line, ""); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, res)
		}
	}
}

func TestParseGates(t *testing.T) {
	gates, err := parseGates("BenchmarkA=20, BenchmarkB=7.5 ,BenchmarkC", 30)
	if err != nil {
		t.Fatal(err)
	}
	want := []gate{
		{name: "BenchmarkA", maxRegress: 20},
		{name: "BenchmarkB", maxRegress: 7.5},
		{name: "BenchmarkC", maxRegress: 30}, // bare name uses -max-regress
	}
	if len(gates) != len(want) {
		t.Fatalf("parseGates = %+v, want %+v", gates, want)
	}
	for i := range want {
		if gates[i] != want[i] {
			t.Errorf("gate %d = %+v, want %+v", i, gates[i], want[i])
		}
	}
	for _, bad := range []string{"", "NotABenchmark=20", "BenchmarkA=zero", "BenchmarkA=-5", "=20"} {
		if _, err := parseGates(bad, 30); err == nil {
			t.Errorf("parseGates(%q) accepted", bad)
		}
	}
}

// TestRunGates is the CI gate's contract: an honest baseline passes, a
// seeded regression on any tracked benchmark fails, a tracked benchmark
// vanishing from the new artifact fails, and a benchmark absent from the
// baseline is skipped with a notice.
func TestRunGates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := write("base.json", `[
		{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1000},
		{"name":"BenchmarkDirectRead","iterations":100,"ns_per_op":500}
	]`)
	gates := []gate{
		{name: "BenchmarkClientPipelined", maxRegress: 20},
		{name: "BenchmarkDirectRead", maxRegress: 20},
	}

	honest := write("honest.json", `[
		{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1100},
		{"name":"BenchmarkDirectRead","iterations":100,"ns_per_op":450}
	]`)
	var out strings.Builder
	if err := runGates(baseline, honest, gates, &out); err != nil {
		t.Errorf("honest run failed the gate: %v\n%s", err, out.String())
	}

	seeded := write("seeded.json", `[
		{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1100},
		{"name":"BenchmarkDirectRead","iterations":100,"ns_per_op":900}
	]`)
	err := runGates(baseline, seeded, gates, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkDirectRead") {
		t.Errorf("seeded 80%% regression not caught: %v", err)
	}

	vanished := write("vanished.json", `[
		{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1100}
	]`)
	err = runGates(baseline, vanished, gates, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("vanished tracked benchmark not caught: %v", err)
	}

	// A gate with no baseline entry yet is skipped, not failed — that is
	// how a new benchmark enters the tracked set without a flag-day.
	out.Reset()
	newGate := append(gates, gate{name: "BenchmarkBrandNew", maxRegress: 20})
	fresh := write("fresh.json", `[
		{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1100},
		{"name":"BenchmarkDirectRead","iterations":100,"ns_per_op":450},
		{"name":"BenchmarkBrandNew","iterations":100,"ns_per_op":10}
	]`)
	if err := runGates(baseline, fresh, newGate, &out); err != nil {
		t.Errorf("new benchmark without baseline failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Errorf("skip notice missing: %q", out.String())
	}
}
