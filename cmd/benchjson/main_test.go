package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `
goos: linux
goarch: amd64
pkg: dynasore/internal/wal
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAppend              	  270684	      4420 ns/op	  31.67 MB/s
BenchmarkAppendGroupCommit64 	     200	      6902.5 ns/op	  20.28 MB/s
BenchmarkViewStoreAppend-8   	  215844	      5169 ns/op	     561 B/op	       5 allocs/op
PASS
ok  	dynasore/internal/wal	3.337s
pkg: dynasore/internal/cluster
BenchmarkServerParallelGet-8 	 3798940	       315.2 ns/op	      24 B/op	       1 allocs/op
--- FAIL: BenchmarkBroken
`
	results, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkAppend" || first.Package != "dynasore/internal/wal" ||
		first.Iterations != 270684 || first.NsPerOp != 4420 {
		t.Errorf("first result = %+v", first)
	}
	if first.MBPerS == nil || *first.MBPerS != 31.67 {
		t.Errorf("MB/s not captured: %+v", first)
	}
	if results[1].NsPerOp != 6902.5 {
		t.Errorf("fractional ns/op lost: %+v", results[1])
	}
	third := results[2]
	if third.Name != "BenchmarkViewStoreAppend" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", third.Name)
	}
	if third.BytesPerOp == nil || *third.BytesPerOp != 561 ||
		third.AllocsPerOp == nil || *third.AllocsPerOp != 5 {
		t.Errorf("benchmem fields = %+v", third)
	}
	if results[3].Package != "dynasore/internal/cluster" {
		t.Errorf("pkg header not tracked: %+v", results[3])
	}
}

func TestParseEmptyInputIsEmptyArray(t *testing.T) {
	results, err := parse(strings.NewReader("nothing to see\n"))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("want empty non-nil slice, got %#v", results)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1000}]`)
	better := write("better.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":900}]`)
	slight := write("slight.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1150}]`)
	bad := write("bad.json", `[{"name":"BenchmarkClientPipelined","iterations":100,"ns_per_op":1500}]`)
	missing := write("missing.json", `[{"name":"BenchmarkOther","iterations":100,"ns_per_op":1}]`)

	if err := runCompare(old, better, "BenchmarkClientPipelined", 20); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}
	if err := runCompare(old, slight, "BenchmarkClientPipelined", 20); err != nil {
		t.Errorf("15%% regression should pass a 20%% limit: %v", err)
	}
	if err := runCompare(old, bad, "BenchmarkClientPipelined", 20); err == nil {
		t.Error("50% regression passed a 20% limit")
	}
	if err := runCompare(old, missing, "BenchmarkClientPipelined", 20); err == nil {
		t.Error("missing benchmark in new artifact not reported")
	}
	if err := runCompare(old, bad, "", 20); err == nil {
		t.Error("missing -bench not reported")
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"ok  	dynasore/internal/wal	3.337s",
		"Benchmark missing iteration count ns/op",
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 100 5 seconds", // no ns/op pair
	} {
		if res, ok := parseLine(line, ""); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, res)
		}
	}
}
