// Command benchjson converts `go test -bench` output into a
// machine-readable JSON array, so CI can archive benchmark numbers as an
// artifact and a perf trajectory can be assembled across commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-output.txt
//	benchjson -compare OLD.json -bench BenchmarkClientPipelined \
//	          -max-regress 20 NEW.json
//
// Every line of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   3 allocs/op   31.52 MB/s
//
// becomes one JSON object; unrecognized lines are ignored. Values carry
// whatever precision the tool printed (ns/op can be fractional).
//
// The -compare mode reads two of its own JSON artifacts instead: it looks
// up -bench (a benchmark name) in both, prints the old and new ns/op and
// the delta, and exits non-zero when the new number regresses by more
// than -max-regress percent — CI's guardrail against silently slowing the
// hot path down.
//
// The -gates mode generalizes -compare to the whole tracked set in one
// run:
//
//	benchjson -compare OLD.json \
//	          -gates "BenchmarkClientPipelined=20,BenchmarkDirectRead=20" \
//	          NEW.json
//
// Each entry is Name=maxRegressPercent (a bare Name uses -max-regress).
// A gate missing from the baseline is skipped with a notice — that is how
// a newly added benchmark enters the gate without a flag-day — but a gate
// missing from the NEW artifact fails: a tracked benchmark that silently
// stopped running is itself a regression. Every gate is evaluated before
// the verdict, so one CI run reports all regressions at once.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark belongs to, when the input
	// contains `pkg:` headers (as `go test ./...` output does).
	Package string `json:"package,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency in nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerS is present for benchmarks that call b.SetBytes.
	MBPerS *float64 `json:"mb_per_s,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON artifact to compare the input artifact against")
	bench := flag.String("bench", "", "benchmark name to compare (required with -compare unless -gates is given)")
	gatesSpec := flag.String("gates", "", "comma-separated Name=maxRegressPercent gates to check with -compare")
	maxRegress := flag.Float64("max-regress", 20, "fail -compare when ns/op regresses by more than this percent")
	flag.Parse()
	if *compare != "" {
		err := func() error {
			if *gatesSpec != "" {
				gates, err := parseGates(*gatesSpec, *maxRegress)
				if err != nil {
					return err
				}
				return runGates(*compare, flag.Arg(0), gates, os.Stdout)
			}
			return runCompare(*compare, flag.Arg(0), *bench, *maxRegress)
		}()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare checks one benchmark of a new artifact against a baseline
// artifact and fails on a regression beyond maxRegress percent.
func runCompare(oldPath, newPath, bench string, maxRegress float64) error {
	if bench == "" {
		return fmt.Errorf("-compare needs -bench <BenchmarkName>")
	}
	if newPath == "" {
		return fmt.Errorf("-compare needs the new artifact as an argument")
	}
	oldNs, err := lookup(oldPath, bench)
	if err != nil {
		return err
	}
	newNs, err := lookup(newPath, bench)
	if err != nil {
		return err
	}
	delta := 100 * (newNs - oldNs) / oldNs
	fmt.Printf("%s: %.1f ns/op -> %.1f ns/op (%+.1f%%)\n", bench, oldNs, newNs, delta)
	if delta > maxRegress {
		return fmt.Errorf("%s regressed %.1f%% (limit %.1f%%)", bench, delta, maxRegress)
	}
	return nil
}

// gate is one tracked benchmark and its personal regression budget.
type gate struct {
	name       string
	maxRegress float64
}

// parseGates parses a -gates spec: comma-separated Name=percent entries,
// where a bare Name falls back to the -max-regress default.
func parseGates(spec string, defaultRegress float64) ([]gate, error) {
	var gates []gate
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, pctStr, hasPct := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if name == "" || !strings.HasPrefix(name, "Benchmark") {
			return nil, fmt.Errorf("gate %q: want BenchmarkName or BenchmarkName=percent", entry)
		}
		g := gate{name: name, maxRegress: defaultRegress}
		if hasPct {
			pct, err := strconv.ParseFloat(strings.TrimSpace(pctStr), 64)
			if err != nil || pct <= 0 {
				return nil, fmt.Errorf("gate %q: bad regression percent %q", entry, pctStr)
			}
			g.maxRegress = pct
		}
		gates = append(gates, g)
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("-gates given but no gates parsed from %q", spec)
	}
	return gates, nil
}

// runGates checks every gate of a new artifact against a baseline and
// fails if any tracked benchmark regressed beyond its budget or vanished
// from the new artifact. All gates are evaluated before the verdict so a
// single run reports every regression.
func runGates(oldPath, newPath string, gates []gate, w io.Writer) error {
	if newPath == "" {
		return fmt.Errorf("-compare needs the new artifact as an argument")
	}
	oldNs, err := loadArtifact(oldPath)
	if err != nil {
		return err
	}
	newNs, err := loadArtifact(newPath)
	if err != nil {
		return err
	}
	var failures []string
	for _, g := range gates {
		baseline, inOld := oldNs[g.name]
		current, inNew := newNs[g.name]
		switch {
		case !inNew:
			// A tracked benchmark that stopped producing numbers is a
			// regression in its own right, not a skip.
			failures = append(failures, fmt.Sprintf("%s missing from %s", g.name, newPath))
			fmt.Fprintf(w, "%s: MISSING from new artifact\n", g.name)
		case !inOld:
			// The benchmark is new: nothing to compare against yet. It
			// enters the gate on the next baseline refresh.
			fmt.Fprintf(w, "%s: %.1f ns/op (no baseline, skipped)\n", g.name, current)
		default:
			delta := 100 * (current - baseline) / baseline
			fmt.Fprintf(w, "%s: %.1f ns/op -> %.1f ns/op (%+.1f%%, limit +%.1f%%)\n",
				g.name, baseline, current, delta, g.maxRegress)
			if delta > g.maxRegress {
				failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (limit %.1f%%)", g.name, delta, g.maxRegress))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d gates failed:\n  %s", len(failures), len(gates), strings.Join(failures, "\n  "))
	}
	return nil
}

// loadArtifact reads a benchjson artifact into a name → ns/op map,
// rejecting non-positive timings (a corrupt artifact must not silently
// pass a gate).
func loadArtifact(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(buf, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		if r.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: %s has non-positive ns/op %v", path, r.Name, r.NsPerOp)
		}
		byName[r.Name] = r.NsPerOp
	}
	return byName, nil
}

// lookup reads a benchjson artifact and returns the named benchmark's
// ns/op.
func lookup(path, bench string) (float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var results []Result
	if err := json.Unmarshal(buf, &results); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, r := range results {
		if r.Name == bench {
			if r.NsPerOp <= 0 {
				return 0, fmt.Errorf("%s: %s has non-positive ns/op %v", path, bench, r.NsPerOp)
			}
			return r.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("%s: benchmark %q not found", path, bench)
}

// parse scans benchmark output, keeping track of `pkg:` headers to
// attribute each benchmark to its package.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if res, ok := parseLine(line, pkg); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// An empty run should still produce a valid JSON array, not "null".
	if results == nil {
		results = []Result{}
	}
	return results, nil
}

// parseLine parses one benchmark result line; ok is false for anything
// that is not one.
func parseLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Package: pkg, Iterations: iters, NsPerOp: -1}
	// The rest of the line is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		case "MB/s":
			m := v
			res.MBPerS = &m
		}
	}
	if res.NsPerOp < 0 {
		return Result{}, false
	}
	return res, true
}
