// Command benchjson converts `go test -bench` output into a
// machine-readable JSON array, so CI can archive benchmark numbers as an
// artifact and a perf trajectory can be assembled across commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-output.txt
//	benchjson -compare OLD.json -bench BenchmarkClientPipelined \
//	          -max-regress 20 NEW.json
//
// Every line of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   3 allocs/op   31.52 MB/s
//
// becomes one JSON object; unrecognized lines are ignored. Values carry
// whatever precision the tool printed (ns/op can be fractional).
//
// The -compare mode reads two of its own JSON artifacts instead: it looks
// up -bench (a benchmark name) in both, prints the old and new ns/op and
// the delta, and exits non-zero when the new number regresses by more
// than -max-regress percent — CI's guardrail against silently slowing the
// hot path down.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark belongs to, when the input
	// contains `pkg:` headers (as `go test ./...` output does).
	Package string `json:"package,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency in nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerS is present for benchmarks that call b.SetBytes.
	MBPerS *float64 `json:"mb_per_s,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON artifact to compare the input artifact against")
	bench := flag.String("bench", "", "benchmark name to compare (required with -compare)")
	maxRegress := flag.Float64("max-regress", 20, "fail -compare when ns/op regresses by more than this percent")
	flag.Parse()
	if *compare != "" {
		if err := runCompare(*compare, flag.Arg(0), *bench, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare checks one benchmark of a new artifact against a baseline
// artifact and fails on a regression beyond maxRegress percent.
func runCompare(oldPath, newPath, bench string, maxRegress float64) error {
	if bench == "" {
		return fmt.Errorf("-compare needs -bench <BenchmarkName>")
	}
	if newPath == "" {
		return fmt.Errorf("-compare needs the new artifact as an argument")
	}
	oldNs, err := lookup(oldPath, bench)
	if err != nil {
		return err
	}
	newNs, err := lookup(newPath, bench)
	if err != nil {
		return err
	}
	delta := 100 * (newNs - oldNs) / oldNs
	fmt.Printf("%s: %.1f ns/op -> %.1f ns/op (%+.1f%%)\n", bench, oldNs, newNs, delta)
	if delta > maxRegress {
		return fmt.Errorf("%s regressed %.1f%% (limit %.1f%%)", bench, delta, maxRegress)
	}
	return nil
}

// lookup reads a benchjson artifact and returns the named benchmark's
// ns/op.
func lookup(path, bench string) (float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var results []Result
	if err := json.Unmarshal(buf, &results); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, r := range results {
		if r.Name == bench {
			if r.NsPerOp <= 0 {
				return 0, fmt.Errorf("%s: %s has non-positive ns/op %v", path, bench, r.NsPerOp)
			}
			return r.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("%s: benchmark %q not found", path, bench)
}

// parse scans benchmark output, keeping track of `pkg:` headers to
// attribute each benchmark to its package.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if res, ok := parseLine(line, pkg); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// An empty run should still produce a valid JSON array, not "null".
	if results == nil {
		results = []Result{}
	}
	return results, nil
}

// parseLine parses one benchmark result line; ok is false for anything
// that is not one.
func parseLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Package: pkg, Iterations: iters, NsPerOp: -1}
	// The rest of the line is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		case "MB/s":
			m := v
			res.MBPerS = &m
		}
	}
	if res.NsPerOp < 0 {
		return Result{}, false
	}
	return res, true
}
