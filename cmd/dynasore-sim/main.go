// Command dynasore-sim runs the paper's experiments and prints the
// corresponding table or figure data.
//
// Usage:
//
//	dynasore-sim -exp table1|fig2|fig3a|fig3b|fig3c|fig3d|table2|table3|fig4|fig5|fig6a|fig6b|all
//	             [-users N] [-days N] [-seed N] [-reps N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynasore/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (table1, fig2, fig3a-d, table2, table3, fig4, fig5, fig6a, fig6b, all)")
		users = flag.Int("users", 2000, "users per dataset (paper: millions, scaled down)")
		days  = flag.Int("days", 2, "synthetic trace days (first day is warmup)")
		seed  = flag.Int64("seed", 42, "random seed")
		reps  = flag.Int("reps", 5, "flash-event repetitions (fig5)")
	)
	flag.Parse()
	if err := run(*exp, *users, *days, *seed, *reps); err != nil {
		fmt.Fprintln(os.Stderr, "dynasore-sim:", err)
		os.Exit(1)
	}
}

func run(exp string, users, days int, seed int64, reps int) error {
	cfg := experiments.Default()
	cfg.Users = users
	cfg.Days = days
	cfg.Seed = seed

	ids := strings.Split(exp, ",")
	if exp == "all" {
		ids = []string{"table1", "fig2", "fig3a", "fig3b", "fig3c", "fig3d",
			"table2", "table3", "fig4", "fig5", "fig6a", "fig6b"}
	}
	for _, id := range ids {
		out, err := runOne(cfg, strings.TrimSpace(id), reps)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
	}
	return nil
}

func runOne(cfg experiments.Config, id string, reps int) (string, error) {
	switch id {
	case "table1":
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return "", err
		}
		return experiments.FormatTable1(rows), nil
	case "fig2":
		days, err := experiments.Figure2(cfg)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure2(days), nil
	case "fig3a", "fig3b", "fig3c", "fig3d":
		ds, flat := experiments.Twitter, false
		switch id {
		case "fig3b":
			ds = experiments.LiveJournal
		case "fig3c":
			ds = experiments.Facebook
		case "fig3d":
			ds, flat = experiments.Facebook, true
		}
		res, err := experiments.Figure3(cfg, ds, flat)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure3(res), nil
	case "table2", "table3":
		extra := 30.0
		if id == "table3" {
			extra = 150.0
		}
		rows, err := experiments.SwitchTraffic(cfg, extra)
		if err != nil {
			return "", err
		}
		return experiments.FormatSwitchTraffic(rows, extra), nil
	case "fig4":
		days, err := experiments.Figure4(cfg)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure4(days), nil
	case "fig5":
		fc := experiments.DefaultFig5()
		fc.Repetitions = reps
		points, err := experiments.Figure5(cfg, fc)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure5(points), nil
	case "fig6a", "fig6b":
		points, err := experiments.Figure6(cfg, id == "fig6b")
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure6(points, id == "fig6b"), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}
