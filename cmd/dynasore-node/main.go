// Command dynasore-node runs one node of the live DynaSoRe cluster: either
// a cache server holding views in memory, or a broker executing the
// Read/Write API against a set of cache servers with a WAL-backed
// persistent store. Both roles serve wire protocol v1 and the multiplexed
// v2 of pkg/dynasore. Brokers drive replica placement with the shared
// DynaSoRe policy engine over the configured cluster topology.
//
// Usage:
//
//	dynasore-node -role server -addr 127.0.0.1:7001
//	dynasore-node -role broker -addr 127.0.0.1:7000 \
//	    -servers 127.0.0.1:7001,127.0.0.1:7002 -data /tmp/dynasore -preferred 0
//
// Explicit topology (zone:rack per node) instead of -preferred:
//
//	dynasore-node -role broker -addr 127.0.0.1:7000 \
//	    -servers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -broker-pos 0:0 -server-pos 0:0,1:0,1:1 -data /tmp/dynasore
//
// Multi-broker cluster (the paper's broker-per-front-end-cluster): every
// broker gets the same -peers list (all broker addresses, including its
// own), the same -peers-pos (one zone:rack per peer), and its own -self
// index. Each broker needs its own -data directory; writes are replicated
// between the brokers' logs:
//
//	dynasore-node -role broker -addr 127.0.0.1:7000 \
//	    -servers 127.0.0.1:7101,127.0.0.1:7102 -server-pos 0:1,1:1 \
//	    -peers 127.0.0.1:7000,127.0.0.1:7001 -peers-pos 0:0,1:0 -self 0 \
//	    -data /tmp/dynasore-b0
//
// Durability/recovery: -checkpoint-every snapshots the persistent store so
// a restart replays only the WAL tail, and -compact deletes WAL segments a
// checkpoint fully covers. A restarted broker of a multi-broker cluster
// additionally pulls the records it missed from its peers (per-origin
// catch-up) without waiting for new writes:
//
//	dynasore-node -role broker ... -data /tmp/dynasore-b0 \
//	    -checkpoint-every 30s -compact 4
//
// Elastic membership: a fresh cache server can join a RUNNING cluster —
// -join names any broker, and the server registers itself (position from
// -join-pos, capacity from -join-capacity) once it is listening. The
// brokers bump the membership epoch, rebalance the rendezvous homes, and
// start placing replicas on the newcomer:
//
//	dynasore-node -role server -addr 127.0.0.1:7005 \
//	    -join 127.0.0.1:7000 -join-pos 2:1
//
// Observability: -ops-addr starts an HTTP listener on any node serving
// Prometheus-text /metrics (per-stage latency histograms plus the broker's
// lifetime counters), /healthz, /debug/traces (recent sampled traces as
// JSON), and /debug/pprof. -trace-slow tunes the slow-trace log threshold
// and -wal-sync-every turns on WAL group commit so fsync latency shows up
// in dynasore_wal_fsync_seconds:
//
//	dynasore-node -role broker ... -ops-addr 127.0.0.1:9100 \
//	    -trace-slow 50ms -wal-sync-every 8
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynasore/internal/promtext"
	"dynasore/internal/telemetry"
	"dynasore/pkg/dynasore"
)

func main() {
	var (
		role        = flag.String("role", "server", "node role: server or broker")
		addr        = flag.String("addr", "127.0.0.1:7001", "listen address")
		servers     = flag.String("servers", "", "comma-separated cache server addresses (broker)")
		dataDir     = flag.String("data", "dynasore-data", "persistent store directory (broker)")
		preferred   = flag.Int("preferred", -1, "index of the broker-local cache server (-1: none; ignored when -server-pos is set)")
		brokerPos   = flag.String("broker-pos", "", "broker position as zone:rack (with -server-pos)")
		serverPos   = flag.String("server-pos", "", "comma-separated zone:rack position per cache server")
		viewCap     = flag.Int("viewcap", 64, "events kept per view")
		policyEvery = flag.Duration("policy-every", 0, "placement maintenance interval (0: default 5s)")
		capacity    = flag.Int("capacity", 0, "max views the policy places per cache server (0: unbounded)")
		peersFlag   = flag.String("peers", "", "comma-separated addresses of every broker of the cluster, including this one (multi-broker)")
		peersPos    = flag.String("peers-pos", "", "comma-separated zone:rack position per peer broker (required with -peers; identical on every broker)")
		self        = flag.Int("self", 0, "this broker's index in -peers")
		syncEvery   = flag.Duration("sync-every", 0, "peer-sync interval: pings, election, placement sync (0: default 1s)")
		ckptEvery   = flag.Duration("checkpoint-every", 0, "checkpoint the persistent store at this interval so restarts replay only the WAL tail (0: disabled)")
		compact     = flag.Int("compact", 0, "delete WAL segments once this many are fully covered by a checkpoint (0: keep all; needs -checkpoint-every)")
		join        = flag.String("join", "", "broker address to register this cache server with, joining a running cluster (server role)")
		joinPos     = flag.String("join-pos", "0:0", "this server's zone:rack position, registered on -join")
		joinCap     = flag.Int("join-capacity", 0, "max views the policy may place on this server, registered on -join (0: broker default)")
		opsAddr     = flag.String("ops-addr", "", "ops HTTP listen address serving /metrics, /healthz, /debug/traces, and /debug/pprof (empty: disabled)")
		traceSlow   = flag.Duration("trace-slow", 0, "log sampled spans slower than this to the slow-trace log (0: default 100ms)")
		walSync     = flag.Int("wal-sync-every", 0, "fsync the broker's WAL after every N-th append — group commit (0: trust the OS page cache)")
	)
	flag.Parse()
	if err := run(config{
		role: *role, addr: *addr, servers: *servers, dataDir: *dataDir,
		preferred: *preferred, brokerPos: *brokerPos, serverPos: *serverPos,
		viewCap: *viewCap, policyEvery: *policyEvery, capacity: *capacity,
		peers: *peersFlag, peersPos: *peersPos, self: *self, syncEvery: *syncEvery,
		checkpointEvery: *ckptEvery, compactAfter: *compact,
		join: *join, joinPos: *joinPos, joinCapacity: *joinCap,
		opsAddr: *opsAddr, traceSlow: *traceSlow, walSyncEvery: *walSync,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dynasore-node:", err)
		os.Exit(1)
	}
}

type config struct {
	role, addr, servers, dataDir string
	preferred                    int
	brokerPos, serverPos         string
	viewCap                      int
	policyEvery                  time.Duration
	capacity                     int
	peers, peersPos              string
	self                         int
	syncEvery                    time.Duration
	checkpointEvery              time.Duration
	compactAfter                 int
	join, joinPos                string
	joinCapacity                 int
	opsAddr                      string
	traceSlow                    time.Duration
	walSyncEvery                 int
}

// serveOps starts the node's ops HTTP listener: Prometheus-text /metrics
// (process telemetry plus any role-specific extra series), /healthz,
// /debug/traces, and /debug/pprof. It returns a shutdown func, or an
// error if the address cannot be bound.
func serveOps(addr string, extra ...func(*strings.Builder)) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops listener: %w", err)
	}
	srv := &http.Server{Handler: telemetry.Default().Handler(extra...)}
	go srv.Serve(ln)
	fmt.Printf("ops listening on http://%s/metrics\n", ln.Addr())
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}, nil
}

// brokerOpsRenderer appends the broker's lifetime counters to the ops
// /metrics page, alongside the process-wide histograms.
func brokerOpsRenderer(b *dynasore.Broker) func(*strings.Builder) {
	return func(sb *strings.Builder) {
		st := b.Stats()
		const ops = "dynasore_broker_ops_total"
		promtext.WriteHeader(sb, ops, "counter", "Broker lifetime operation counts by kind.")
		promtext.WriteInt(sb, ops, promtext.Labels("op", "read"), st.Reads)
		promtext.WriteInt(sb, ops, promtext.Labels("op", "write"), st.Writes)
		promtext.WriteInt(sb, ops, promtext.Labels("op", "replicate"), st.Replicated)
		promtext.WriteInt(sb, ops, promtext.Labels("op", "evict"), st.Evicted)
		promtext.WriteInt(sb, ops, promtext.Labels("op", "migrate"), st.Migrated)
		promtext.WriteInt(sb, ops, promtext.Labels("op", "miss"), st.Misses)
		promtext.WriteInt(sb, ops, promtext.Labels("op", "lease_grant"), st.LeaseGrants)
		promtext.WriteHeader(sb, "dynasore_membership_epoch", "gauge", "Current membership epoch of this broker.")
		promtext.WriteUint(sb, "dynasore_membership_epoch", "", st.Epoch)
	}
}

// serverOpsRenderer appends the cache server's view count to the ops
// /metrics page.
func serverOpsRenderer(s *dynasore.CacheServer) func(*strings.Builder) {
	return func(sb *strings.Builder) {
		promtext.WriteHeader(sb, "dynasore_server_views", "gauge", "Views currently held by this cache server.")
		promtext.WriteInt(sb, "dynasore_server_views", "", int64(s.NumViews()))
	}
}

// parsePeers builds the multi-broker peer list from -peers/-peers-pos, or
// returns nil when -peers was not given (single-broker cluster). The
// position table must be given in full: leader election assumes every
// broker evaluates the same (position, index) order, so a partial table —
// e.g. each broker knowing only its own position — would make elections
// disagree and could leave the cluster with no leader at all.
func parsePeers(peers, peersPos string, self int) ([]dynasore.BrokerPeer, error) {
	if peers == "" {
		if peersPos != "" {
			return nil, fmt.Errorf("-peers-pos requires -peers")
		}
		return nil, nil
	}
	if peersPos == "" {
		return nil, fmt.Errorf("-peers requires -peers-pos (the full zone:rack table, identical on every broker)")
	}
	addrs := strings.Split(peers, ",")
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("-self %d out of range for %d peers", self, len(addrs))
	}
	parts := strings.Split(peersPos, ",")
	if len(parts) != len(addrs) {
		return nil, fmt.Errorf("-peers-pos has %d positions for %d peers", len(parts), len(addrs))
	}
	out := make([]dynasore.BrokerPeer, len(addrs))
	for i, a := range addrs {
		pos, err := parsePosition(strings.TrimSpace(parts[i]))
		if err != nil {
			return nil, err
		}
		out[i] = dynasore.BrokerPeer{Addr: strings.TrimSpace(a), Pos: pos}
	}
	return out, nil
}

// joinCluster registers a freshly started cache server with a broker of a
// running cluster.
func joinCluster(broker, selfAddr string, pos dynasore.Position, capacity int) (dynasore.Membership, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := dynasore.Dial(ctx, broker)
	if err != nil {
		return dynasore.Membership{}, err
	}
	defer cl.Close()
	return cl.AddServer(ctx, selfAddr, pos, capacity)
}

// parsePosition parses "zone:rack".
func parsePosition(s string) (dynasore.Position, error) {
	var p dynasore.Position
	if _, err := fmt.Sscanf(s, "%d:%d", &p.Zone, &p.Rack); err != nil {
		return p, fmt.Errorf("bad position %q (want zone:rack): %w", s, err)
	}
	return p, nil
}

// parsePlacement builds the broker's cluster topology from the position
// flags, or returns nil when none were given (the Preferred default
// applies).
func parsePlacement(brokerPos, serverPos string) (*dynasore.Placement, error) {
	if serverPos == "" {
		if brokerPos != "" {
			return nil, fmt.Errorf("-broker-pos requires -server-pos")
		}
		return nil, nil
	}
	p := &dynasore.Placement{}
	if brokerPos != "" {
		pos, err := parsePosition(brokerPos)
		if err != nil {
			return nil, err
		}
		p.Broker = pos
	}
	for _, s := range strings.Split(serverPos, ",") {
		pos, err := parsePosition(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		p.Servers = append(p.Servers, pos)
	}
	return p, nil
}

func run(c config) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	if c.traceSlow > 0 {
		telemetry.Default().SetSlowThreshold(c.traceSlow)
	}
	switch c.role {
	case "server":
		s, err := dynasore.ListenCacheServer(c.addr)
		if err != nil {
			return err
		}
		fmt.Printf("cache server listening on %s\n", s.Addr())
		if c.opsAddr != "" {
			shutdown, err := serveOps(c.opsAddr, serverOpsRenderer(s))
			if err != nil {
				s.Close()
				return err
			}
			defer shutdown()
		}
		if c.join != "" {
			// Register with the running cluster: the broker (any broker —
			// followers forward to the leader) bumps the membership epoch
			// and this server starts taking its rendezvous share of homes.
			pos, err := parsePosition(c.joinPos)
			if err != nil {
				s.Close()
				return err
			}
			m, err := joinCluster(c.join, s.Addr(), pos, c.joinCapacity)
			if err != nil {
				s.Close()
				return fmt.Errorf("join cluster via %s: %w", c.join, err)
			}
			fmt.Printf("joined cluster at epoch %d (%d servers active)\n", m.Epoch, m.NumActive())
		}
		<-stop
		return s.Close()
	case "broker":
		if c.servers == "" {
			return fmt.Errorf("broker needs -servers")
		}
		placement, err := parsePlacement(c.brokerPos, c.serverPos)
		if err != nil {
			return err
		}
		peers, err := parsePeers(c.peers, c.peersPos, c.self)
		if err != nil {
			return err
		}
		addrs := strings.Split(c.servers, ",")
		b, err := dynasore.ListenBroker(dynasore.BrokerConfig{
			Addr:             c.addr,
			CacheServerAddrs: addrs,
			DataDir:          c.dataDir,
			Placement:        placement,
			Preferred:        c.preferred,
			ViewCap:          c.viewCap,
			PolicyEvery:      c.policyEvery,
			ServerCapacity:   c.capacity,
			Peers:            peers,
			Self:             c.self,
			SyncEvery:        c.syncEvery,
			CheckpointEvery:  c.checkpointEvery,
			CompactAfter:     c.compactAfter,
			WALSyncEvery:     c.walSyncEvery,
		})
		if err != nil {
			return err
		}
		if c.opsAddr != "" {
			shutdown, err := serveOps(c.opsAddr, brokerOpsRenderer(b))
			if err != nil {
				b.Close()
				return err
			}
			defer shutdown()
		}
		if from, replayed := b.Recovery(); from {
			fmt.Printf("recovered from checkpoint, replayed %d WAL records\n", replayed)
		}
		if len(peers) > 1 {
			fmt.Printf("broker %d/%d listening on %s (%d cache servers, leader: broker %d)\n",
				c.self, len(peers), b.Addr(), len(addrs), b.Leader())
		} else {
			fmt.Printf("broker listening on %s (%d cache servers)\n", b.Addr(), len(addrs))
		}
		<-stop
		return b.Close()
	default:
		return fmt.Errorf("unknown role %q", c.role)
	}
}
