// Command dynasore-node runs one node of the live DynaSoRe cluster: either
// a cache server holding views in memory, or a broker executing the
// Read/Write API against a set of cache servers with a WAL-backed
// persistent store. Both roles serve wire protocol v1 and the multiplexed
// v2 of pkg/dynasore. Brokers drive replica placement with the shared
// DynaSoRe policy engine over the configured cluster topology.
//
// Usage:
//
//	dynasore-node -role server -addr 127.0.0.1:7001
//	dynasore-node -role broker -addr 127.0.0.1:7000 \
//	    -servers 127.0.0.1:7001,127.0.0.1:7002 -data /tmp/dynasore -preferred 0
//
// Explicit topology (zone:rack per node) instead of -preferred:
//
//	dynasore-node -role broker -addr 127.0.0.1:7000 \
//	    -servers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -broker-pos 0:0 -server-pos 0:0,1:0,1:1 -data /tmp/dynasore
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynasore/pkg/dynasore"
)

func main() {
	var (
		role        = flag.String("role", "server", "node role: server or broker")
		addr        = flag.String("addr", "127.0.0.1:7001", "listen address")
		servers     = flag.String("servers", "", "comma-separated cache server addresses (broker)")
		dataDir     = flag.String("data", "dynasore-data", "persistent store directory (broker)")
		preferred   = flag.Int("preferred", -1, "index of the broker-local cache server (-1: none; ignored when -server-pos is set)")
		brokerPos   = flag.String("broker-pos", "", "broker position as zone:rack (with -server-pos)")
		serverPos   = flag.String("server-pos", "", "comma-separated zone:rack position per cache server")
		viewCap     = flag.Int("viewcap", 64, "events kept per view")
		policyEvery = flag.Duration("policy-every", 0, "placement maintenance interval (0: default 5s)")
		capacity    = flag.Int("capacity", 0, "max views the policy places per cache server (0: unbounded)")
	)
	flag.Parse()
	if err := run(config{
		role: *role, addr: *addr, servers: *servers, dataDir: *dataDir,
		preferred: *preferred, brokerPos: *brokerPos, serverPos: *serverPos,
		viewCap: *viewCap, policyEvery: *policyEvery, capacity: *capacity,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dynasore-node:", err)
		os.Exit(1)
	}
}

type config struct {
	role, addr, servers, dataDir string
	preferred                    int
	brokerPos, serverPos         string
	viewCap                      int
	policyEvery                  time.Duration
	capacity                     int
}

// parsePosition parses "zone:rack".
func parsePosition(s string) (dynasore.Position, error) {
	var p dynasore.Position
	if _, err := fmt.Sscanf(s, "%d:%d", &p.Zone, &p.Rack); err != nil {
		return p, fmt.Errorf("bad position %q (want zone:rack): %w", s, err)
	}
	return p, nil
}

// parsePlacement builds the broker's cluster topology from the position
// flags, or returns nil when none were given (the Preferred default
// applies).
func parsePlacement(brokerPos, serverPos string) (*dynasore.Placement, error) {
	if serverPos == "" {
		if brokerPos != "" {
			return nil, fmt.Errorf("-broker-pos requires -server-pos")
		}
		return nil, nil
	}
	p := &dynasore.Placement{}
	if brokerPos != "" {
		pos, err := parsePosition(brokerPos)
		if err != nil {
			return nil, err
		}
		p.Broker = pos
	}
	for _, s := range strings.Split(serverPos, ",") {
		pos, err := parsePosition(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		p.Servers = append(p.Servers, pos)
	}
	return p, nil
}

func run(c config) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	switch c.role {
	case "server":
		s, err := dynasore.ListenCacheServer(c.addr)
		if err != nil {
			return err
		}
		fmt.Printf("cache server listening on %s\n", s.Addr())
		<-stop
		return s.Close()
	case "broker":
		if c.servers == "" {
			return fmt.Errorf("broker needs -servers")
		}
		placement, err := parsePlacement(c.brokerPos, c.serverPos)
		if err != nil {
			return err
		}
		addrs := strings.Split(c.servers, ",")
		b, err := dynasore.ListenBroker(dynasore.BrokerConfig{
			Addr:             c.addr,
			CacheServerAddrs: addrs,
			DataDir:          c.dataDir,
			Placement:        placement,
			Preferred:        c.preferred,
			ViewCap:          c.viewCap,
			PolicyEvery:      c.policyEvery,
			ServerCapacity:   c.capacity,
		})
		if err != nil {
			return err
		}
		fmt.Printf("broker listening on %s (%d cache servers)\n", b.Addr(), len(addrs))
		<-stop
		return b.Close()
	default:
		return fmt.Errorf("unknown role %q", c.role)
	}
}
