// Command dynasore-node runs one node of the live DynaSoRe cluster: either
// a cache server holding views in memory, or a broker executing the
// Read/Write API against a set of cache servers with a WAL-backed
// persistent store. Both roles serve wire protocol v1 and the multiplexed
// v2 of pkg/dynasore.
//
// Usage:
//
//	dynasore-node -role server -addr 127.0.0.1:7001
//	dynasore-node -role broker -addr 127.0.0.1:7000 \
//	    -servers 127.0.0.1:7001,127.0.0.1:7002 -data /tmp/dynasore -preferred 0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dynasore/pkg/dynasore"
)

func main() {
	var (
		role      = flag.String("role", "server", "node role: server or broker")
		addr      = flag.String("addr", "127.0.0.1:7001", "listen address")
		servers   = flag.String("servers", "", "comma-separated cache server addresses (broker)")
		dataDir   = flag.String("data", "dynasore-data", "persistent store directory (broker)")
		preferred = flag.Int("preferred", -1, "index of the broker-local cache server (-1: none)")
		viewCap   = flag.Int("viewcap", 64, "events kept per view")
	)
	flag.Parse()
	if err := run(*role, *addr, *servers, *dataDir, *preferred, *viewCap); err != nil {
		fmt.Fprintln(os.Stderr, "dynasore-node:", err)
		os.Exit(1)
	}
}

func run(role, addr, servers, dataDir string, preferred, viewCap int) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	switch role {
	case "server":
		s, err := dynasore.ListenCacheServer(addr)
		if err != nil {
			return err
		}
		fmt.Printf("cache server listening on %s\n", s.Addr())
		<-stop
		return s.Close()
	case "broker":
		if servers == "" {
			return fmt.Errorf("broker needs -servers")
		}
		b, err := dynasore.ListenBroker(dynasore.BrokerConfig{
			Addr:             addr,
			CacheServerAddrs: strings.Split(servers, ","),
			DataDir:          dataDir,
			Preferred:        preferred,
			ViewCap:          viewCap,
		})
		if err != nil {
			return err
		}
		fmt.Printf("broker listening on %s (%d cache servers)\n", b.Addr(), len(strings.Split(servers, ",")))
		<-stop
		return b.Close()
	default:
		return fmt.Errorf("unknown role %q", role)
	}
}
