// Command dsload is a live load generator for a running DynaSoRe cluster:
// it synthesizes a social graph (internal/socialgraph), drives a
// read-heavy feed workload against the broker tier — Read(u, L) over each
// user's followees, interleaved with Write(u) posts — and reports
// end-to-end throughput and latency as Go-benchmark lines on stdout, so
// `cmd/benchjson` can turn a run into a machine-readable artifact (CI
// archives one as BENCH_PR5.json).
//
// Usage:
//
//	dsload -brokers 127.0.0.1:7000,127.0.0.1:7001 -users 2000 -duration 10s
//	dsload -selfhost -duration 2s     # in-process cluster; the CI smoke mode
//	dsload -selfhost -direct -duration 2s   # direct-read fast path: lease
//	                                  # views and read cache servers directly,
//	                                  # reporting the direct-hit ratio
//
// The -selfhost mode starts an in-process cluster (pkg/dynasore Engine)
// and drives it over the real network client, so one command exercises
// the full write-ahead-log / cache / placement stack with zero setup.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynasore/internal/socialgraph"
	"dynasore/pkg/dynasore"
)

func main() {
	var (
		brokers   = flag.String("brokers", "", "comma-separated broker addresses of the cluster under load")
		selfhost  = flag.Bool("selfhost", false, "start an in-process cluster and load it (no -brokers needed)")
		users     = flag.Int("users", 1000, "social graph size")
		graph     = flag.String("graph", "twitter", "graph shape: twitter, facebook, or livejournal")
		seed      = flag.Int64("seed", 42, "graph and workload RNG seed")
		duration  = flag.Duration("duration", 5*time.Second, "how long to apply load")
		workers   = flag.Int("workers", 8, "concurrent workload goroutines")
		writeFrac = flag.Float64("write-frac", 0.2, "fraction of operations that are writes")
		readCap   = flag.Int("read-cap", 32, "max followees fetched per feed read")
		direct    = flag.Bool("direct", false, "enable the direct-read fast path (lease views, read cache servers without the broker)")
	)
	flag.Parse()
	if err := run(*brokers, *selfhost, *users, *graph, *seed, *duration, *workers, *writeFrac, *readCap, *direct); err != nil {
		fmt.Fprintln(os.Stderr, "dsload:", err)
		os.Exit(1)
	}
}

func run(brokers string, selfhost bool, users int, graphName string, seed int64,
	duration time.Duration, workers int, writeFrac float64, readCap int, direct bool) error {
	ctx := context.Background()
	// The direct fast path lives on the cluster client only, so -direct
	// dials DialCluster even against a single (or selfhosted) broker.
	var opts []dynasore.DialOption
	if direct {
		opts = append(opts, dynasore.WithDirectReads(0))
	}
	var store dynasore.Store
	switch {
	case selfhost:
		e, err := dynasore.Open(dynasore.EngineConfig{CacheServers: 3, Preferred: 0})
		if err != nil {
			return err
		}
		defer e.Close()
		// Load the engine over the real network client, so the measured
		// path includes framing, multiplexing, and the broker's serve
		// loop — not just in-process calls.
		if direct {
			c, err := dynasore.DialCluster(ctx, []string{e.Addr()}, opts...)
			if err != nil {
				return err
			}
			defer c.Close()
			store = c
			break
		}
		c, err := dynasore.Dial(ctx, e.Addr())
		if err != nil {
			return err
		}
		defer c.Close()
		store = c
	case brokers != "":
		c, err := dynasore.DialCluster(ctx, strings.Split(brokers, ","), opts...)
		if err != nil {
			return err
		}
		defer c.Close()
		store = c
	default:
		return fmt.Errorf("need -brokers or -selfhost")
	}

	var g *socialgraph.Graph
	var err error
	switch graphName {
	case "twitter":
		g, err = socialgraph.Twitter(users, seed)
	case "facebook":
		g, err = socialgraph.Facebook(users, seed)
	case "livejournal":
		g, err = socialgraph.LiveJournal(users, seed)
	default:
		err = fmt.Errorf("unknown graph %q", graphName)
	}
	if err != nil {
		return err
	}

	// Seed one post per user so the first feed reads hit real views.
	payload := []byte("dsload: lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do eiusmod tempor incididunt ut labore et dolore magna aliqua")
	for u := 0; u < g.NumUsers(); u++ {
		if _, err := store.Write(ctx, uint32(u), payload); err != nil {
			return fmt.Errorf("seed write for user %d: %w", u, err)
		}
	}

	var (
		readOps, readNs   atomic.Int64
		writeOps, writeNs atomic.Int64
		viewsRead         atomic.Int64
		firstErr          atomic.Pointer[error]
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for time.Now().Before(deadline) {
				u := uint32(rng.Intn(g.NumUsers()))
				if rng.Float64() < writeFrac {
					start := time.Now()
					_, err := store.Write(ctx, u, payload)
					if err != nil {
						e := fmt.Errorf("write user %d: %w", u, err)
						firstErr.CompareAndSwap(nil, &e)
						return
					}
					writeNs.Add(int64(time.Since(start)))
					writeOps.Add(1)
					continue
				}
				targets := feedTargets(g, u, readCap)
				start := time.Now()
				views, err := store.Read(ctx, targets)
				if err != nil {
					e := fmt.Errorf("read feed of user %d: %w", u, err)
					firstErr.CompareAndSwap(nil, &e)
					return
				}
				readNs.Add(int64(time.Since(start)))
				readOps.Add(1)
				viewsRead.Add(int64(len(views)))
			}
		}(w)
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}

	// Benchmark lines on stdout — exactly the shape cmd/benchjson parses.
	if n := readOps.Load(); n > 0 {
		fmt.Println(benchLine("BenchmarkDSLoadFeedRead", n, readNs.Load()))
	}
	if n := writeOps.Load(); n > 0 {
		fmt.Println(benchLine("BenchmarkDSLoadWrite", n, writeNs.Load()))
	}
	// The human summary goes to stderr so it never pollutes the artifact.
	st, err := store.Stats(ctx)
	if err != nil {
		return err
	}
	total := readOps.Load() + writeOps.Load()
	fmt.Fprintf(os.Stderr, "dsload: graph=%s users=%d workers=%d duration=%s\n",
		g.Name(), g.NumUsers(), workers, duration)
	fmt.Fprintf(os.Stderr, "dsload: %d ops (%.0f/s): %d feed reads (%d views), %d writes\n",
		total, float64(total)/duration.Seconds(), readOps.Load(), viewsRead.Load(), writeOps.Load())
	fmt.Fprintf(os.Stderr, "dsload: cluster epoch=%d replicated=%d migrated=%d evicted=%d misses=%d\n",
		st.Epoch, st.Replicated, st.Migrated, st.Evicted, st.Misses)
	if direct {
		// Hit ratio over views read: every view either came straight off a
		// cache server or fell back to the broker path.
		ratio := 0.0
		if v := viewsRead.Load(); v > 0 {
			ratio = 100 * float64(st.DirectReads) / float64(v)
		}
		fmt.Fprintf(os.Stderr, "dsload: direct hits=%d (%.1f%% of views) fenced/fallback=%d leases=%d\n",
			st.DirectReads, ratio, st.DirectStale, st.LeaseGrants)
	}
	return nil
}

// feedTargets builds the Read(u, L) target list for one feed fetch: the
// user's followees (capped at maxTargets), or the user's own view for the
// graph's isolated vertices.
func feedTargets(g *socialgraph.Graph, u uint32, maxTargets int) []uint32 {
	following := g.Following(socialgraph.UserID(u))
	if len(following) == 0 {
		return []uint32{u}
	}
	if maxTargets > 0 && len(following) > maxTargets {
		following = following[:maxTargets]
	}
	targets := make([]uint32, len(following))
	for i, f := range following {
		targets[i] = uint32(f)
	}
	return targets
}

// benchLine formats one Go-benchmark result line: name, iteration count,
// and nanoseconds per operation.
func benchLine(name string, ops, totalNs int64) string {
	return fmt.Sprintf("%s \t%8d\t%12.1f ns/op", name, ops, float64(totalNs)/float64(ops))
}
