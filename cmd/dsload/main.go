// Command dsload is a live load generator for a running DynaSoRe cluster:
// it synthesizes a social graph (internal/socialgraph), drives a
// read-heavy feed workload against the broker tier — Read(u, L) over each
// user's followees, interleaved with Write(u) posts — and reports
// end-to-end throughput and latency as Go-benchmark lines on stdout, so
// `cmd/benchjson` can turn a run into a machine-readable artifact (CI
// archives one as BENCH_PR5.json).
//
// Usage:
//
//	dsload -brokers 127.0.0.1:7000,127.0.0.1:7001 -users 2000 -duration 10s
//	dsload -selfhost -duration 2s     # in-process cluster; the CI smoke mode
//	dsload -selfhost -direct -duration 2s   # direct-read fast path: lease
//	                                  # views and read cache servers directly,
//	                                  # reporting the direct-hit ratio
//	dsload -scenario rolling-upgrade  # scripted acceptance scenario with
//	                                  # fault injection and invariant checks
//	dsload -scenario list             # list the built-in scenarios
//	dsload -gateway http://127.0.0.1:8080 -token s3cret -duration 5s
//	                                  # drive a dsgate HTTP edge instead of
//	                                  # the broker wire protocol; reports
//	                                  # BenchmarkGatewayRead/Write lines
//	dsload -brokers ... -trace-sample 64   # mint a wire-propagated trace
//	                                  # context on one op in 64; sampled
//	                                  # spans land in each broker's
//	                                  # /debug/traces ring
//
// Besides throughput lines, the open-loop mode reports client-observed
// tail latency per op kind as BenchmarkDSLoadFeedRead/p50 (p95, p99,
// p999) sub-lines, in the same parseable shape.
//
// The -selfhost mode starts an in-process cluster (pkg/dynasore Engine)
// and drives it over the real network client, so one command exercises
// the full write-ahead-log / cache / placement stack with zero setup.
//
// The -scenario mode hands control to internal/scenario: it boots its own
// multi-broker rig, replays the named fault-injection timeline (flash
// crowd, diurnal shift, rolling upgrade, broker crash), checks the
// continuous invariants — no lost acknowledged writes, no wrong-version
// reads, monotone epochs — and prints per-scenario benchmark lines on
// stdout in the same format as the open-loop mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynasore/internal/gateway"
	"dynasore/internal/scenario"
	"dynasore/internal/socialgraph"
	"dynasore/internal/telemetry"
	"dynasore/pkg/dynasore"
)

// options is every dsload flag, gathered so validation and dispatch are
// testable without a process boundary.
type options struct {
	brokers   string
	selfhost  bool
	scenario  string
	gateway   string
	token     string
	users     int
	graph     string
	seed      int64
	duration  time.Duration
	workers   int
	writeFrac float64
	readCap   int
	opsScale  float64
	direct    bool
	// traceSample, when positive, sets the client-side trace sampling
	// rate: one op in traceSample mints a wire-propagated trace context.
	// 1 traces every op — the setting `dsctl trace` uses.
	traceSample int
	// usersSet records whether -users was given explicitly: a scenario
	// carries its own designed population, which an untouched default
	// must not override.
	usersSet bool
}

func main() {
	var o options
	flag.StringVar(&o.brokers, "brokers", "", "comma-separated broker addresses of the cluster under load")
	flag.BoolVar(&o.selfhost, "selfhost", false, "start an in-process cluster and load it (no -brokers needed)")
	flag.StringVar(&o.scenario, "scenario", "", "run a named acceptance scenario on its own rig ('list' prints the names)")
	flag.StringVar(&o.gateway, "gateway", "", "drive a dsgate HTTP gateway at this base URL instead of brokers")
	flag.StringVar(&o.token, "token", "", "bearer token for -gateway (the gateway's auth middleware)")
	flag.IntVar(&o.users, "users", 1000, "social graph size")
	flag.StringVar(&o.graph, "graph", "twitter", "graph shape: twitter, facebook, or livejournal")
	flag.Int64Var(&o.seed, "seed", 42, "graph and workload RNG seed")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "how long to apply load")
	flag.IntVar(&o.workers, "workers", 8, "concurrent workload goroutines")
	flag.Float64Var(&o.writeFrac, "write-frac", 0.2, "fraction of operations that are writes")
	flag.IntVar(&o.readCap, "read-cap", 32, "max followees fetched per feed read")
	flag.Float64Var(&o.opsScale, "ops-scale", 1, "scale factor for a scenario's scripted op counts")
	flag.BoolVar(&o.direct, "direct", false, "enable the direct-read fast path (lease views, read cache servers without the broker)")
	flag.IntVar(&o.traceSample, "trace-sample", 0, "trace one op in N across the cluster (1 = every op; 0 keeps the 1/1024 default)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "users" {
			o.usersSet = true
		}
	})
	if err := dispatch(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dsload:", err)
		os.Exit(1)
	}
}

// dispatch validates the flag set and routes to the scenario or open-loop
// mode. It is the whole of main minus flag declarations and the exit
// code, so tests can drive every path.
func dispatch(o options, stdout, stderr io.Writer) error {
	if err := validate(o); err != nil {
		return err
	}
	if o.scenario == "list" {
		for _, name := range scenario.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if o.traceSample > 0 {
		telemetry.Default().SetSampleEvery(o.traceSample)
	}
	if o.scenario != "" {
		return runScenario(o, stdout, stderr)
	}
	return run(o, stdout, stderr)
}

// validate rejects flag combinations before any cluster is started.
func validate(o options) error {
	if o.users <= 0 {
		return fmt.Errorf("-users must be positive, got %d", o.users)
	}
	if o.workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", o.workers)
	}
	if o.writeFrac < 0 || o.writeFrac > 1 {
		return fmt.Errorf("-write-frac must be in [0,1], got %g", o.writeFrac)
	}
	if o.opsScale <= 0 {
		return fmt.Errorf("-ops-scale must be positive, got %g", o.opsScale)
	}
	if o.traceSample < 0 {
		return fmt.Errorf("-trace-sample must be non-negative, got %d", o.traceSample)
	}
	if o.scenario != "" {
		if o.brokers != "" || o.selfhost || o.gateway != "" {
			return fmt.Errorf("-scenario boots its own rig; drop -brokers/-selfhost/-gateway")
		}
		if o.scenario == "list" {
			return nil
		}
		if _, ok := scenario.Lookup(o.scenario); !ok {
			return scenario.ErrUnknown(o.scenario)
		}
		return nil
	}
	if o.gateway != "" {
		if o.brokers != "" || o.selfhost {
			return fmt.Errorf("-gateway drives the HTTP edge; drop -brokers/-selfhost")
		}
		if o.direct {
			return fmt.Errorf("-direct is a cluster-client option; the gateway decides its own read path")
		}
		return nil
	}
	if o.brokers == "" && !o.selfhost {
		return fmt.Errorf("need -brokers, -selfhost, -gateway, or -scenario")
	}
	return nil
}

// runScenario executes one acceptance timeline: benchmark lines on
// stdout (the artifact), narration and the outcome summary on stderr.
func runScenario(o options, stdout, stderr io.Writer) error {
	sc, ok := scenario.Lookup(o.scenario)
	if !ok {
		return scenario.ErrUnknown(o.scenario)
	}
	users := 0 // 0 = the scenario's own designed population
	if o.usersSet {
		users = o.users
	}
	res, err := scenario.Execute(sc, scenario.Options{
		Users:    users,
		Seed:     o.seed,
		Workers:  o.workers,
		OpsScale: o.opsScale,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return fmt.Errorf("scenario %s: %w", o.scenario, err)
	}
	if verr := res.Err(); verr != nil {
		return fmt.Errorf("scenario %s: %w", o.scenario, verr)
	}
	for _, line := range res.BenchLines() {
		fmt.Fprintln(stdout, line)
	}
	fmt.Fprintf(stderr, "dsload: scenario %s passed: %d reads (%d views), %d writes, %d failed reads, epoch %d\n",
		res.Scenario, res.Reads, res.ViewsRead, res.Writes, res.FailedReads, res.FinalEpoch)
	if res.DirectReads > 0 || res.DirectStale > 0 {
		fmt.Fprintf(stderr, "dsload: direct hits=%d fenced/fallback=%d\n", res.DirectReads, res.DirectStale)
	}
	return nil
}

func run(o options, stdout, stderr io.Writer) error {
	var (
		brokers   = o.brokers
		selfhost  = o.selfhost
		users     = o.users
		graphName = o.graph
		seed      = o.seed
		duration  = o.duration
		workers   = o.workers
		writeFrac = o.writeFrac
		readCap   = o.readCap
		direct    = o.direct
	)
	ctx := context.Background()
	// The direct fast path lives on the cluster client only, so -direct
	// dials DialCluster even against a single (or selfhosted) broker.
	var opts []dynasore.DialOption
	if direct {
		opts = append(opts, dynasore.WithDirectReads(0))
	}
	var store dynasore.Store
	switch {
	case o.gateway != "":
		c := gateway.NewClient(o.gateway, o.token)
		defer func() { _ = c.Close() }()
		store = c
	case selfhost:
		e, err := dynasore.Open(dynasore.EngineConfig{CacheServers: 3, Preferred: 0})
		if err != nil {
			return err
		}
		defer e.Close()
		// Load the engine over the real network client, so the measured
		// path includes framing, multiplexing, and the broker's serve
		// loop — not just in-process calls.
		if direct {
			c, err := dynasore.DialCluster(ctx, []string{e.Addr()}, opts...)
			if err != nil {
				return err
			}
			defer c.Close()
			store = c
			break
		}
		c, err := dynasore.Dial(ctx, e.Addr())
		if err != nil {
			return err
		}
		defer c.Close()
		store = c
	case brokers != "":
		c, err := dynasore.DialCluster(ctx, strings.Split(brokers, ","), opts...)
		if err != nil {
			return err
		}
		defer c.Close()
		store = c
	default:
		return fmt.Errorf("need -brokers or -selfhost")
	}

	var g *socialgraph.Graph
	var err error
	switch graphName {
	case "twitter":
		g, err = socialgraph.Twitter(users, seed)
	case "facebook":
		g, err = socialgraph.Facebook(users, seed)
	case "livejournal":
		g, err = socialgraph.LiveJournal(users, seed)
	default:
		err = fmt.Errorf("unknown graph %q", graphName)
	}
	if err != nil {
		return err
	}

	// Seed one post per user so the first feed reads hit real views.
	payload := []byte("dsload: lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do eiusmod tempor incididunt ut labore et dolore magna aliqua")
	for u := 0; u < g.NumUsers(); u++ {
		if _, err := store.Write(ctx, uint32(u), payload); err != nil {
			return fmt.Errorf("seed write for user %d: %w", u, err)
		}
	}

	// Per-op latency distributions live in a private telemetry node (the
	// workload's view of the cluster, kept out of any co-resident ops
	// surface) so the tail percentiles come from the same fixed-bucket
	// histograms the brokers export — client-observed p99 lines up with
	// server-side dynasore_broker_op_seconds by construction.
	loadTel := telemetry.New()
	readHist := loadTel.Histogram("dsload_op_seconds", "Client-observed op latency.", "op", "read")
	writeHist := loadTel.Histogram("dsload_op_seconds", "Client-observed op latency.", "op", "write")
	var (
		readOps, readNs   atomic.Int64
		writeOps, writeNs atomic.Int64
		viewsRead         atomic.Int64
		firstErr          atomic.Pointer[error]
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for time.Now().Before(deadline) {
				u := uint32(rng.Intn(g.NumUsers()))
				if rng.Float64() < writeFrac {
					start := time.Now()
					_, err := store.Write(ctx, u, payload)
					if err != nil {
						e := fmt.Errorf("write user %d: %w", u, err)
						firstErr.CompareAndSwap(nil, &e)
						return
					}
					el := time.Since(start)
					writeHist.Observe(el)
					writeNs.Add(int64(el))
					writeOps.Add(1)
					continue
				}
				targets := feedTargets(g, u, readCap)
				start := time.Now()
				views, err := store.Read(ctx, targets)
				if err != nil {
					e := fmt.Errorf("read feed of user %d: %w", u, err)
					firstErr.CompareAndSwap(nil, &e)
					return
				}
				el := time.Since(start)
				readHist.Observe(el)
				readNs.Add(int64(el))
				readOps.Add(1)
				viewsRead.Add(int64(len(views)))
			}
		}(w)
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}

	// Benchmark lines on stdout — exactly the shape cmd/benchjson parses.
	// Gateway runs report under their own names: HTTP-edge latency is a
	// different quantity than broker-wire latency and must not share a
	// series with it.
	readName, writeName := "BenchmarkDSLoadFeedRead", "BenchmarkDSLoadWrite"
	if o.gateway != "" {
		readName, writeName = "BenchmarkGatewayRead", "BenchmarkGatewayWrite"
	}
	if n := readOps.Load(); n > 0 {
		fmt.Fprintln(stdout, benchLine(readName, n, readNs.Load()))
		printQuantiles(stdout, readName, n, readHist)
	}
	if n := writeOps.Load(); n > 0 {
		fmt.Fprintln(stdout, benchLine(writeName, n, writeNs.Load()))
		printQuantiles(stdout, writeName, n, writeHist)
	}
	// The human summary goes to stderr so it never pollutes the artifact.
	st, err := store.Stats(ctx)
	if err != nil {
		return err
	}
	total := readOps.Load() + writeOps.Load()
	fmt.Fprintf(stderr, "dsload: graph=%s users=%d workers=%d duration=%s\n",
		g.Name(), g.NumUsers(), workers, duration)
	fmt.Fprintf(stderr, "dsload: %d ops (%.0f/s): %d feed reads (%d views), %d writes\n",
		total, float64(total)/duration.Seconds(), readOps.Load(), viewsRead.Load(), writeOps.Load())
	fmt.Fprintf(stderr, "dsload: cluster epoch=%d replicated=%d migrated=%d evicted=%d misses=%d\n",
		st.Epoch, st.Replicated, st.Migrated, st.Evicted, st.Misses)
	if direct {
		// Hit ratio over views read: every view either came straight off a
		// cache server or fell back to the broker path.
		ratio := 0.0
		if v := viewsRead.Load(); v > 0 {
			ratio = 100 * float64(st.DirectReads) / float64(v)
		}
		fmt.Fprintf(stderr, "dsload: direct hits=%d (%.1f%% of views) fenced/fallback=%d leases=%d\n",
			st.DirectReads, ratio, st.DirectStale, st.LeaseGrants)
	}
	return nil
}

// feedTargets builds the Read(u, L) target list for one feed fetch: the
// user's followees (capped at maxTargets), or the user's own view for the
// graph's isolated vertices.
func feedTargets(g *socialgraph.Graph, u uint32, maxTargets int) []uint32 {
	following := g.Following(socialgraph.UserID(u))
	if len(following) == 0 {
		return []uint32{u}
	}
	if maxTargets > 0 && len(following) > maxTargets {
		following = following[:maxTargets]
	}
	targets := make([]uint32, len(following))
	for i, f := range following {
		targets[i] = uint32(f)
	}
	return targets
}

// benchLine formats one Go-benchmark result line: name, iteration count,
// and nanoseconds per operation.
func benchLine(name string, ops, totalNs int64) string {
	return fmt.Sprintf("%s \t%8d\t%12.1f ns/op", name, ops, float64(totalNs)/float64(ops))
}

// printQuantiles emits one Go-benchmark sub-line per tail percentile of an
// op kind (p50/p95/p99/p999), read off the run's latency histogram. The
// values are bucket upper bounds, so a reported p99 is conservative — the
// true quantile is at or below it.
func printQuantiles(w io.Writer, name string, ops int64, h *telemetry.Histogram) {
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}} {
		ns := h.Quantile(q.q) * 1e9
		fmt.Fprintf(w, "%s/%s \t%8d\t%12.1f ns/op\n", name, q.suffix, ops, ns)
	}
}
