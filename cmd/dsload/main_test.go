package main

import (
	"strings"
	"testing"

	"dynasore/internal/socialgraph"
)

func TestBenchLineParsesLikeGoBench(t *testing.T) {
	line := benchLine("BenchmarkDSLoadFeedRead", 1500, 3_000_000_000)
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "BenchmarkDSLoadFeedRead" ||
		fields[1] != "1500" || fields[3] != "ns/op" {
		t.Fatalf("bench line = %q (fields %v)", line, fields)
	}
	if fields[2] != "2000000.0" {
		t.Errorf("ns/op = %s, want 2000000.0", fields[2])
	}
}

func TestFeedTargetsCapAndFallback(t *testing.T) {
	g, err := socialgraph.Twitter(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumUsers(); u++ {
		targets := feedTargets(g, uint32(u), 8)
		if len(targets) == 0 {
			t.Fatalf("user %d got an empty target list", u)
		}
		if len(targets) > 8 {
			t.Fatalf("user %d got %d targets, cap is 8", u, len(targets))
		}
	}
	// An isolated user reads their own view.
	gg, err := socialgraph.LoadEdgeList(strings.NewReader(""), "empty", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := feedTargets(gg, 2, 8); len(got) != 1 || got[0] != 2 {
		t.Fatalf("isolated user targets = %v, want [2]", got)
	}
}
