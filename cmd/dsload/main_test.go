package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynasore/internal/gateway"
	"dynasore/internal/gwconfig"
	"dynasore/internal/socialgraph"
	"dynasore/pkg/dynasore"
)

// TestValidateArgs is the table over every rejected and accepted flag
// combination. A rejected combination is what makes `dsload -scenario
// no-such-thing` exit non-zero: main turns any dispatch error into
// os.Exit(1).
func TestValidateArgs(t *testing.T) {
	base := options{users: 1000, workers: 8, writeFrac: 0.2, opsScale: 1, duration: time.Second}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; empty means valid
	}{
		{"selfhost ok", func(o *options) { o.selfhost = true }, ""},
		{"brokers ok", func(o *options) { o.brokers = "127.0.0.1:7000" }, ""},
		{"scenario ok", func(o *options) { o.scenario = "rolling-upgrade" }, ""},
		{"scenario list ok", func(o *options) { o.scenario = "list" }, ""},
		{"no target", func(o *options) {}, "need -brokers, -selfhost, -gateway, or -scenario"},
		{"unknown scenario", func(o *options) { o.scenario = "no-such-timeline" }, "unknown scenario"},
		{"scenario plus selfhost", func(o *options) { o.scenario = "flash-crowd"; o.selfhost = true }, "boots its own rig"},
		{"scenario plus brokers", func(o *options) { o.scenario = "flash-crowd"; o.brokers = "x:1" }, "boots its own rig"},
		{"gateway ok", func(o *options) { o.gateway = "http://127.0.0.1:8080" }, ""},
		{"gateway plus brokers", func(o *options) { o.gateway = "http://x"; o.brokers = "x:1" }, "drives the HTTP edge"},
		{"gateway plus selfhost", func(o *options) { o.gateway = "http://x"; o.selfhost = true }, "drives the HTTP edge"},
		{"gateway plus direct", func(o *options) { o.gateway = "http://x"; o.direct = true }, "-direct is a cluster-client option"},
		{"gateway plus scenario", func(o *options) { o.scenario = "flash-crowd"; o.gateway = "http://x" }, "boots its own rig"},
		{"zero users", func(o *options) { o.selfhost = true; o.users = 0 }, "-users must be positive"},
		{"zero workers", func(o *options) { o.selfhost = true; o.workers = 0 }, "-workers must be positive"},
		{"write frac over 1", func(o *options) { o.selfhost = true; o.writeFrac = 1.5 }, "-write-frac"},
		{"negative ops scale", func(o *options) { o.scenario = "flash-crowd"; o.opsScale = -1 }, "-ops-scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mutate(&o)
			err := validate(o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", o, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %v, want error containing %q", o, err, tc.wantErr)
			}
		})
	}
}

func TestDispatchUnknownScenarioNamesTheOptions(t *testing.T) {
	var out, errw bytes.Buffer
	err := dispatch(options{users: 1, workers: 1, opsScale: 1, scenario: "nope"}, &out, &errw)
	if err == nil {
		t.Fatal("dispatch accepted an unknown scenario")
	}
	// The error the operator sees must list what IS available.
	if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "rolling-upgrade") {
		t.Errorf("unknown-scenario error unhelpful: %v", err)
	}
}

func TestDispatchScenarioList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := dispatch(options{users: 1, workers: 1, opsScale: 1, scenario: "list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flash-crowd", "diurnal-shift", "rolling-upgrade", "broker-crash-rebalance"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scenario list missing %q: %q", want, out.String())
		}
	}
}

// TestDispatchRunsScenario drives one real (shrunken) timeline through the
// exact path `dsload -scenario` uses and checks the artifact contract:
// benchmark lines on stdout, narration on stderr.
func TestDispatchRunsScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real cluster; skipped in -short mode")
	}
	var out, errw bytes.Buffer
	o := options{users: 400, usersSet: true, workers: 4, opsScale: 0.25, scenario: "diurnal-shift", seed: 11}
	if err := dispatch(o, &out, &errw); err != nil {
		t.Fatalf("dispatch: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(out.String(), "BenchmarkScenarioDiurnalShiftFeedRead") {
		t.Errorf("stdout missing the scenario bench line: %q", out.String())
	}
	if !strings.Contains(errw.String(), "scenario diurnal-shift passed") {
		t.Errorf("stderr missing the outcome summary: %q", errw.String())
	}
}

func TestBenchLineParsesLikeGoBench(t *testing.T) {
	line := benchLine("BenchmarkDSLoadFeedRead", 1500, 3_000_000_000)
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "BenchmarkDSLoadFeedRead" ||
		fields[1] != "1500" || fields[3] != "ns/op" {
		t.Fatalf("bench line = %q (fields %v)", line, fields)
	}
	if fields[2] != "2000000.0" {
		t.Errorf("ns/op = %s, want 2000000.0", fields[2])
	}
}

func TestFeedTargetsCapAndFallback(t *testing.T) {
	g, err := socialgraph.Twitter(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumUsers(); u++ {
		targets := feedTargets(g, uint32(u), 8)
		if len(targets) == 0 {
			t.Fatalf("user %d got an empty target list", u)
		}
		if len(targets) > 8 {
			t.Fatalf("user %d got %d targets, cap is 8", u, len(targets))
		}
	}
	// An isolated user reads their own view.
	gg, err := socialgraph.LoadEdgeList(strings.NewReader(""), "empty", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := feedTargets(gg, 2, 8); len(got) != 1 || got[0] != 2 {
		t.Fatalf("isolated user targets = %v, want [2]", got)
	}
}

// The -gateway mode drives a real dsgate surface end to end and reports
// under the gateway bench names — the series BENCH_PR9.json archives.
func TestRunGatewayMode(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an in-process cluster")
	}
	e, err := dynasore.Open(dynasore.EngineConfig{CacheServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cfg := gwconfig.Default()
	cfg.Selfhost = true
	cfg.Tokens = []string{"load-token"}
	cfg.RateRPS = 1e6
	cfg.RateBurst = 1e6
	gw, err := gateway.New(cfg, e, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	defer srv.Close()

	var out, errw bytes.Buffer
	o := options{
		gateway:   srv.URL,
		token:     "load-token",
		users:     50,
		graph:     "twitter",
		seed:      1,
		duration:  200 * time.Millisecond,
		workers:   4,
		writeFrac: 0.2,
		readCap:   8,
		opsScale:  1,
	}
	if err := dispatch(o, &out, &errw); err != nil {
		t.Fatalf("gateway-mode run: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(out.String(), "BenchmarkGatewayRead") {
		t.Errorf("stdout missing BenchmarkGatewayRead line:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "dsload:") {
		t.Errorf("stderr missing the human summary:\n%s", errw.String())
	}
}
